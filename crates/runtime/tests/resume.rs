//! The failure model, exercised end to end: supervised sweeps must
//! survive injected panics, watchdog-tripping stalls, mid-flight kills,
//! and torn journal writes — and a killed-and-resumed sweep must produce
//! exactly the reports of an uninterrupted run, at any thread count.

use std::path::PathBuf;
use std::sync::Arc;

use oraclesize_core::oracle::EmptyOracle;
use oraclesize_graph::families::Family;
use oraclesize_runtime::{
    chaos, run_batch, run_supervised_batch, CellStatus, ChaosPlan, Pool, RunRequest,
    SuperviseConfig, SweepOptions,
};
use oraclesize_sim::protocol::FloodOnce;
use oraclesize_sim::{FaultPlan, Instance, SchedulerKind, SimConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An untraced cell grid (traced cells are exercised by the batch suite;
/// the journal deliberately re-runs them, so resume tests stay untraced
/// to cover the replay path).
fn grid(fam: Family, n: usize, seed: u64, cells: usize) -> Vec<RunRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = Arc::new(fam.build(n, &mut rng));
    let source = seed as usize % g.num_nodes();
    let instance = Instance::build(g, source, &EmptyOracle);
    let protocol: Arc<dyn oraclesize_sim::protocol::Protocol + Send + Sync> = Arc::new(FloodOnce);
    (0..cells)
        .map(|cell| {
            let cell_seed = seed.wrapping_add(cell as u64);
            let config = SimConfig::broadcast()
                .with_scheduler(match cell % 3 {
                    0 => SchedulerKind::Fifo,
                    1 => SchedulerKind::Lifo,
                    _ => SchedulerKind::Random { seed: cell_seed },
                })
                .with_synchronous(cell % 2 == 0)
                .with_faults(if cell % 2 == 0 {
                    FaultPlan::message_faults(cell_seed, 0.1, 0.1, 0.2)
                } else {
                    FaultPlan::default()
                });
            RunRequest::new(Arc::clone(&instance), Arc::clone(&protocol), config)
        })
        .collect()
}

fn temp_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oraclesize-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.journal"))
}

fn options(journal: Option<PathBuf>) -> SweepOptions {
    SweepOptions {
        journal,
        ..SweepOptions::default()
    }
}

#[test]
fn unsupervised_and_supervised_reports_agree() {
    let requests = grid(Family::Cycle, 12, 42, 10);
    let baseline = run_batch(&Pool::new(1), &requests);
    let sweep = run_supervised_batch(&Pool::new(3), &requests, &SweepOptions::default());
    assert!(!sweep.interrupted);
    assert!(sweep.warnings.is_empty());
    assert_eq!(sweep.reports(), baseline);
    assert!(sweep
        .cells
        .iter()
        .all(|c| c.status == CellStatus::Completed));
}

/// The in-order committer's guarantee: journal *bytes* — not just loaded
/// records — are identical at any thread count and chunk size, even
/// though workers finish cells out of order under stealing. The CI
/// steal-smoke job diffs exactly these bytes against a serial run.
#[test]
fn journal_bytes_are_identical_across_thread_counts_and_chunks() {
    let requests = grid(Family::Torus, 12, 99, 14);
    let serial_path = temp_journal("bytes-serial");
    run_supervised_batch(
        &Pool::new(1),
        &requests,
        &options(Some(serial_path.clone())),
    );
    let serial_bytes = std::fs::read(&serial_path).unwrap();
    assert!(!serial_bytes.is_empty());
    for threads in [2usize, 8, 16] {
        for chunk in [None, Some(1), Some(5)] {
            let path = temp_journal(&format!("bytes-{threads}-{chunk:?}"));
            run_supervised_batch(
                &Pool::new(threads),
                &requests,
                &SweepOptions {
                    chunk,
                    ..options(Some(path.clone()))
                },
            );
            let bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(
                bytes, serial_bytes,
                "journal bytes diverged at threads = {threads}, chunk = {chunk:?}"
            );
        }
    }
    std::fs::remove_file(&serial_path).ok();
}

#[test]
fn injected_panic_recovers_as_degraded() {
    let requests = grid(Family::Path, 8, 7, 6);
    let baseline = run_batch(&Pool::new(1), &requests);
    let opts = SweepOptions {
        supervise: SuperviseConfig {
            max_retries: 2,
            ..SuperviseConfig::default()
        },
        chaos: ChaosPlan::new().panic_at(2, 2),
        ..SweepOptions::default()
    };
    let sweep = run_supervised_batch(&Pool::new(2), &requests, &opts);
    assert_eq!(sweep.reports(), baseline, "recovered reports are clean");
    assert_eq!(sweep.cells[2].status, CellStatus::Degraded { retries: 2 });
    assert_eq!(sweep.cells[2].attempts, 3);
    assert!(sweep.cells[2].backoff_ticks > 0, "backoff was accounted");
    assert!(!sweep.any_aborted());
    assert!(sweep.any_degraded());
    assert!(
        sweep.summary().contains("1 degraded (2 retries)"),
        "{}",
        sweep.summary()
    );
}

#[test]
fn panic_past_retry_budget_aborts_only_that_cell() {
    let requests = grid(Family::Path, 8, 7, 6);
    let opts = SweepOptions {
        supervise: SuperviseConfig {
            max_retries: 1,
            ..SuperviseConfig::default()
        },
        chaos: ChaosPlan::new().panic_at(4, 99),
        ..SweepOptions::default()
    };
    let sweep = run_supervised_batch(&Pool::new(2), &requests, &opts);
    assert_eq!(sweep.cells[4].status, CellStatus::Aborted);
    let err = sweep.cells[4].report.result.as_ref().unwrap_err();
    assert!(err.starts_with("panic: chaos: injected panic"), "{err}");
    // The other five cells completed untouched; the sweep itself survived.
    assert_eq!(
        sweep
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Completed)
            .count(),
        5
    );
    assert!(!sweep.interrupted);
}

#[test]
fn stall_trips_the_watchdog_and_recovers_on_retry() {
    let requests = grid(Family::Cycle, 10, 3, 4);
    let baseline = run_batch(&Pool::new(1), &requests);
    let opts = SweepOptions {
        supervise: SuperviseConfig {
            max_retries: 1,
            cell_timeout: Some(50_000),
            ..SuperviseConfig::default()
        },
        chaos: ChaosPlan::new().stall_at(1, 1),
        ..SweepOptions::default()
    };
    let sweep = run_supervised_batch(&Pool::new(2), &requests, &opts);
    assert_eq!(sweep.reports(), baseline);
    assert_eq!(sweep.cells[1].status, CellStatus::Degraded { retries: 1 });
}

#[test]
fn watchdog_timeout_aborts_runaway_cells() {
    // A 1-step budget makes every flood "runaway": the real engine
    // StepLimit path, not a chaos synthesis.
    let requests = grid(Family::Cycle, 10, 3, 2);
    let opts = SweepOptions {
        supervise: SuperviseConfig {
            cell_timeout: Some(1),
            ..SuperviseConfig::default()
        },
        ..SweepOptions::default()
    };
    let sweep = run_supervised_batch(&Pool::new(1), &requests, &opts);
    for cell in &sweep.cells {
        assert_eq!(cell.status, CellStatus::Aborted);
        let err = cell.report.result.as_ref().unwrap_err();
        assert!(err.contains("step limit 1 exhausted"), "{err}");
    }
    assert!(
        sweep.summary().ends_with("2 aborted"),
        "{}",
        sweep.summary()
    );
}

#[test]
fn kill_and_resume_replays_journaled_cells() {
    let requests = grid(Family::RandomSparse, 14, 99, 9);
    let baseline = run_batch(&Pool::new(1), &requests);
    let path = temp_journal("kill-resume");
    let killed = run_supervised_batch(
        &Pool::new(1),
        &requests,
        &SweepOptions {
            chaos: ChaosPlan::new().die_before(5),
            ..options(Some(path.clone()))
        },
    );
    assert!(killed.interrupted);
    assert!(killed.cells[5..]
        .iter()
        .all(|c| c.status == CellStatus::Aborted && c.attempts == 0));
    let resumed = run_supervised_batch(
        &Pool::new(2),
        &requests,
        &SweepOptions {
            resume: true,
            ..options(Some(path))
        },
    );
    assert!(!resumed.interrupted);
    assert_eq!(resumed.reports(), baseline);
    assert_eq!(
        resumed
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Resumed)
            .count(),
        5
    );
}

#[test]
fn torn_journal_record_reruns_the_cell_on_resume() {
    let requests = grid(Family::Path, 10, 17, 6);
    let baseline = run_batch(&Pool::new(1), &requests);
    let path = temp_journal("torn");
    let killed = run_supervised_batch(
        &Pool::new(1),
        &requests,
        &SweepOptions {
            chaos: ChaosPlan::new().die_before(4),
            ..options(Some(path.clone()))
        },
    );
    assert!(killed.interrupted);
    // Tear into the final record, simulating a crash mid-write.
    chaos::tear_tail(&path, 9).unwrap();
    let resumed = run_supervised_batch(
        &Pool::new(1),
        &requests,
        &SweepOptions {
            resume: true,
            ..options(Some(path))
        },
    );
    assert!(!resumed.interrupted);
    assert_eq!(resumed.reports(), baseline, "torn cell re-ran cleanly");
    assert_eq!(
        resumed
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Resumed)
            .count(),
        3,
        "the torn record was dropped, the rest replayed"
    );
    assert!(
        resumed.warnings.iter().any(|w| w.contains("torn")),
        "{:?}",
        resumed.warnings
    );
}

#[test]
fn resume_against_a_different_grid_shape_reruns_everything() {
    let requests = grid(Family::Path, 10, 17, 6);
    let path = temp_journal("shape");
    run_supervised_batch(&Pool::new(1), &requests, &options(Some(path.clone())));
    let shorter = grid(Family::Path, 10, 17, 5);
    let resumed = run_supervised_batch(
        &Pool::new(1),
        &shorter,
        &SweepOptions {
            resume: true,
            ..options(Some(path))
        },
    );
    assert!(resumed
        .cells
        .iter()
        .all(|c| c.status == CellStatus::Completed));
    assert!(
        resumed
            .warnings
            .iter()
            .any(|w| w.contains("does not match")),
        "{:?}",
        resumed.warnings
    );
}

#[test]
fn seed_mismatch_reruns_the_cell() {
    let requests = grid(Family::Path, 10, 17, 4);
    let path = temp_journal("seed");
    run_supervised_batch(
        &Pool::new(1),
        &requests,
        &SweepOptions {
            seeds: Some(vec![1, 2, 3, 4]),
            ..options(Some(path.clone()))
        },
    );
    let resumed = run_supervised_batch(
        &Pool::new(1),
        &requests,
        &SweepOptions {
            resume: true,
            seeds: Some(vec![1, 2, 999, 4]),
            ..options(Some(path))
        },
    );
    let statuses: Vec<CellStatus> = resumed.cells.iter().map(|c| c.status).collect();
    assert_eq!(
        statuses,
        vec![
            CellStatus::Resumed,
            CellStatus::Resumed,
            CellStatus::Completed,
            CellStatus::Resumed
        ]
    );
    assert!(
        resumed.warnings.iter().any(|w| w.contains("seed")),
        "{:?}",
        resumed.warnings
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant at the report level: kill at a random cell
    /// — mid-steal when single-cell chunks oversubscribe the workers —
    /// resume at a random thread count (possibly killing again), and the
    /// final reports equal an uninterrupted serial run's.
    #[test]
    fn killed_and_resumed_sweeps_match_uninterrupted_runs(
        fam in proptest::sample::select(Family::ALL.to_vec()),
        n in 4usize..20,
        seed in any::<u64>(),
        kill_a in 0usize..10,
        kill_b in 0usize..10,
        threads in proptest::sample::select(vec![1usize, 2, 8, 16]),
        chunk in proptest::sample::select(vec![None, Some(1usize), Some(4)]),
    ) {
        let cells = 10;
        let requests = grid(fam, n, seed, cells);
        let baseline = run_batch(&Pool::new(1), &requests);
        let path = temp_journal(&format!("prop-{seed}-{kill_a}-{kill_b}"));
        // First flight: fresh journal, killed at kill_a.
        let first = run_supervised_batch(&Pool::new(threads), &requests, &SweepOptions {
            chaos: ChaosPlan::new().die_before(kill_a),
            chunk,
            ..options(Some(path.clone()))
        });
        prop_assert!(first.interrupted || kill_a >= cells);
        // Second flight: resumed, killed again later on.
        let kill2 = kill_a.max(kill_b);
        let second = run_supervised_batch(&Pool::new(threads), &requests, &SweepOptions {
            resume: true,
            chaos: ChaosPlan::new().die_before(kill2),
            chunk,
            ..options(Some(path.clone()))
        });
        prop_assert!(second.interrupted || kill2 >= cells);
        // Final flight: resumed to completion.
        let last = run_supervised_batch(&Pool::new(threads), &requests, &SweepOptions {
            resume: true,
            chunk,
            ..options(Some(path.clone()))
        });
        std::fs::remove_file(&path).ok();
        prop_assert!(!last.interrupted);
        prop_assert_eq!(last.reports(), baseline);
        prop_assert!(last.cells.iter().all(|c| matches!(
            c.status,
            CellStatus::Completed | CellStatus::Resumed
        )));
    }
}
