//! The determinism contract, pinned down: for a fixed request list, the
//! batch report vector — and everything derived from it (aggregates,
//! rendered JSON) — is identical at `--threads 1`, `2`, `8`, and `16`
//! (the last oversubscribing this machine, so workers genuinely
//! interleave and steal), under any chunk plan.

use std::sync::Arc;

use oraclesize_core::oracle::EmptyOracle;
use oraclesize_graph::families::Family;
use oraclesize_runtime::{
    drain, run_batch, Aggregate, ChunkPlan, MetricsSink, Pool, ReportCollector, RunRequest,
};
use oraclesize_sim::protocol::FloodOnce;
use oraclesize_sim::{FaultPlan, Instance, SchedulerKind, SimConfig, TraceSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a grid of cells over one shared instance: a seed sweep with
/// per-cell schedulers and fault plans, exercising every code path that
/// could conceivably differ across workers.
fn grid(fam: Family, n: usize, seed: u64, cells: usize) -> Vec<RunRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = Arc::new(fam.build(n, &mut rng));
    let source = seed as usize % g.num_nodes();
    let instance = Instance::build(g, source, &EmptyOracle);
    let protocol: Arc<dyn oraclesize_sim::protocol::Protocol + Send + Sync> = Arc::new(FloodOnce);
    (0..cells)
        .map(|cell| {
            let cell_seed = seed.wrapping_add(cell as u64);
            let config = SimConfig::broadcast()
                .with_scheduler(match cell % 3 {
                    0 => SchedulerKind::Fifo,
                    1 => SchedulerKind::Lifo,
                    _ => SchedulerKind::Random { seed: cell_seed },
                })
                .with_synchronous(cell % 2 == 0)
                .with_faults(if cell % 2 == 0 {
                    FaultPlan::message_faults(cell_seed, 0.1, 0.1, 0.2)
                } else {
                    FaultPlan::default()
                })
                .capture_trace(match cell % 4 {
                    0 => TraceSpec::Full,
                    1 => TraceSpec::Ring { capacity: 16 },
                    _ => TraceSpec::Off,
                });
            RunRequest::new(Arc::clone(&instance), Arc::clone(&protocol), config)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite 3: for a fixed seed, `RunReport`s are identical for
    /// `--threads` 1, 2, 8, and 16 — and so are the aggregate JSON bytes.
    #[test]
    fn reports_identical_across_thread_counts(
        fam in proptest::sample::select(Family::ALL.to_vec()),
        n in 4usize..24,
        seed in any::<u64>(),
    ) {
        let requests = grid(fam, n, seed, 12);
        let serial = run_batch(&Pool::new(1), &requests);
        for threads in [2usize, 8, 16] {
            let parallel = run_batch(&Pool::new(threads), &requests);
            prop_assert_eq!(&serial, &parallel, "threads = {}", threads);

            let mut agg_s = Aggregate::new();
            let mut agg_p = Aggregate::new();
            drain(&mut agg_s, &serial);
            drain(&mut agg_p, &parallel);
            prop_assert_eq!(agg_s.finish().render(), agg_p.finish().render());

            let mut coll_s = ReportCollector::new();
            let mut coll_p = ReportCollector::new();
            drain(&mut coll_s, &serial);
            drain(&mut coll_p, &parallel);
            prop_assert_eq!(coll_s.finish().render(), coll_p.finish().render());
        }
    }

    /// Chunk plans set scheduling granularity, never results: any chunk
    /// size, at any thread count, merges to the serial report vector.
    #[test]
    fn reports_identical_across_chunk_plans(
        seed in any::<u64>(),
        chunk in 1usize..16,
        threads in proptest::sample::select(vec![2usize, 8, 16]),
    ) {
        let requests = grid(Family::Torus, 16, seed, 18);
        let serial = run_batch(&Pool::new(1), &requests);
        let pool = Pool::new(threads);
        let plan = ChunkPlan::uniform(requests.len(), chunk);
        let (chunked, stats) =
            pool.run_chunked(&plan, |i| oraclesize_runtime::run_cell_report(i, &requests[i]));
        prop_assert_eq!(&serial, &chunked, "threads = {}, chunk = {}", threads, chunk);
        prop_assert_eq!(stats.tasks as usize, requests.len());
    }
}

/// A deterministic (non-property) pin of the same contract, so the
/// guarantee is exercised even when proptest shrinks its case budget.
#[test]
fn fixed_grid_is_thread_count_invariant() {
    let requests = grid(Family::Cycle, 16, 2006, 24);
    let serial = run_batch(&Pool::new(1), &requests);
    assert_eq!(serial.len(), 24);
    assert!(serial.iter().any(|r| r.outcome().is_some()));
    for threads in [2, 3, 8, 16] {
        assert_eq!(serial, run_batch(&Pool::new(threads), &requests));
    }
}
