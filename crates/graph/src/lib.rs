//! Port-labeled network substrate for the `oraclesize` project.
//!
//! The model (paper §1.2, §1.4): a network is an undirected connected graph
//! whose nodes have distinct labels, and a node `v` of degree `deg(v)` has
//! its incident edges numbered by *ports* `0, 1, …, deg(v)−1`. A node a
//! priori knows only its own label, its degree, and whether it is the
//! source; everything else must come from an oracle.
//!
//! This crate provides:
//!
//! * [`PortGraph`] — the network representation with bidirectional port
//!   maps and invariant validation,
//! * [`builder::PortGraphBuilder`] — incremental construction with
//!   automatic or explicit port assignment,
//! * [`families`] — standard graph families used by the experiments,
//! * [`gadgets`] — the paper's lower-bound constructions: the rotationally
//!   port-labeled complete graph `K*_n`, the subdivided graphs `G_{n,S}`
//!   (Theorem 2.2) and the clique-gadget graphs `G_{n,S,C}` (Theorem 3.2),
//! * [`spanning`] — rooted spanning trees, including the *light* tree of
//!   Claim 3.1 whose total contribution `Σ #2(w(e))` is at most `4n`.
//!
//! # Examples
//!
//! ```
//! use oraclesize_graph::families;
//!
//! let g = families::cycle(6);
//! assert_eq!(g.num_nodes(), 6);
//! assert!(g.is_connected());
//! g.validate().unwrap();
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod families;
pub mod gadgets;
pub mod portgraph;
pub mod resilience;
pub mod spanning;
pub mod traverse;

pub use builder::PortGraphBuilder;
pub use portgraph::{EdgeRef, GraphError, NodeId, Port, PortGraph};
pub use resilience::connectivity_preserving_crash_set;
pub use spanning::RootedTree;
