//! Rooted spanning trees, including the *light* tree of Claim 3.1.
//!
//! The wakeup oracle (Theorem 2.1) encodes, for each node, the ports toward
//! its children in *some* rooted spanning tree; the broadcast oracle
//! (Theorem 3.1) needs the specific tree `T0` whose total contribution
//! `Σ_{e ∈ T0} #2(w(e))` is at most `4n` — built here by
//! [`light_tree`], a phase-based variant of Kruskal's algorithm following
//! the proof of Claim 3.1 step by step.

use rand::seq::SliceRandom;
use rand::Rng;

use oraclesize_bits::bits_to_represent;

use crate::csr::CsrRows;
use crate::portgraph::{EdgeRef, NodeId, Port, PortGraph};
use crate::traverse::UnionFind;

/// A spanning tree of a [`PortGraph`], rooted at a designated node, with
/// the port numbers needed by the oracles.
///
/// # Examples
///
/// ```
/// use oraclesize_graph::{families, spanning};
///
/// let g = families::cycle(5);
/// let t = spanning::bfs_tree(&g, 0);
/// assert_eq!(t.root(), 0);
/// assert_eq!(t.num_nodes(), 5);
/// assert!(t.validate(&g).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    root: NodeId,
    /// `parent[v] = Some((parent, port_at_parent, port_at_child))`.
    parent: Vec<Option<(NodeId, Port, Port)>>,
    /// Row `v` holds `[(child, port_at_v)]`, sorted by port — flat CSR
    /// rows, the same layout the host graph uses.
    children: CsrRows<(NodeId, Port)>,
}

impl RootedTree {
    /// Assembles a rooted tree from a parent map (ports filled in from `g`).
    ///
    /// `parents[v]` is `v`'s parent, `None` exactly for the root.
    ///
    /// # Panics
    ///
    /// Panics if the map is not a spanning tree of `g` rooted at `root`
    /// (wrong `None` count, missing edges, or unreachable nodes).
    pub fn from_parents(g: &PortGraph, root: NodeId, parents: &[Option<NodeId>]) -> Self {
        let n = g.num_nodes();
        assert_eq!(parents.len(), n, "one parent entry per node");
        assert!(parents[root].is_none(), "root must have no parent");
        let mut parent = vec![None; n];
        let mut child_pairs: Vec<(NodeId, (NodeId, Port))> =
            Vec::with_capacity(n.saturating_sub(1));
        for v in 0..n {
            match parents[v] {
                None => assert_eq!(v, root, "non-root node {v} lacks a parent"),
                Some(p) => {
                    // Look the edge up from the child side: Σ deg(child)
                    // is 2m over the whole tree, where scanning from the
                    // parent would cost Σ deg(parent) — quadratic on stars
                    // and cliques.
                    let port_at_child = g
                        .port_toward(v, p)
                        .unwrap_or_else(|| panic!("tree edge {{{p},{v}}} missing from graph"));
                    let port_at_parent = g.arrival_ports(v)[port_at_child];
                    parent[v] = Some((p, port_at_parent, port_at_child));
                    child_pairs.push((p, (v, port_at_parent)));
                }
            }
        }
        let mut children = CsrRows::from_pairs(n, &child_pairs);
        for v in 0..n {
            children.row_mut(v).sort_by_key(|&(_, port)| port);
        }
        let t = RootedTree {
            root,
            parent,
            children,
        };
        assert!(
            t.validate(g).is_ok(),
            "parent map does not form a spanning tree"
        );
        t
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes spanned.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// `v`'s parent with the connecting ports
    /// (`(parent, port_at_parent, port_at_v)`), or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, Port, Port)> {
        self.parent[v]
    }

    /// `v`'s children as `(child, port_at_v)`, in port order.
    pub fn children(&self, v: NodeId) -> &[(NodeId, Port)] {
        self.children.row(v)
    }

    /// `true` if `v` has no children.
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children.row(v).is_empty()
    }

    /// Iterates the tree edges as [`EdgeRef`]s of the host graph.
    pub fn edges<'a>(&'a self, g: &'a PortGraph) -> impl Iterator<Item = EdgeRef> + 'a {
        (0..self.num_nodes()).filter_map(move |v| {
            self.parent[v].map(|(p, _, _)| {
                g.edge_between(p, v)
                    .expect("tree edges exist in the host graph")
            })
        })
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: NodeId) -> usize {
        let mut d = 0;
        let mut cur = v;
        while let Some((p, _, _)) = self.parent[cur] {
            cur = p;
            d += 1;
        }
        d
    }

    /// The paper's total contribution of this tree:
    /// `Σ_{e ∈ T} #2(w(e))` where `w(e) = min(port_u(e), port_v(e))`.
    pub fn contribution(&self, g: &PortGraph) -> u64 {
        self.edges(g)
            .map(|e| bits_to_represent(e.weight()) as u64)
            .sum()
    }

    /// Checks that this is a spanning tree of `g` rooted at
    /// [`root`](RootedTree::root): every non-root has a parent edge present
    /// in `g`, ports are consistent, and every node reaches the root.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first defect.
    pub fn validate(&self, g: &PortGraph) -> Result<(), String> {
        let n = self.num_nodes();
        if n != g.num_nodes() {
            return Err(format!("tree spans {n} nodes, graph has {}", g.num_nodes()));
        }
        if self.parent[self.root].is_some() {
            return Err("root has a parent".into());
        }
        for v in 0..n {
            if v != self.root && self.parent[v].is_none() {
                return Err(format!("non-root node {v} has no parent"));
            }
            if let Some((p, pp, pc)) = self.parent[v] {
                if g.neighbor_via(p, pp) != (v, pc) {
                    return Err(format!("ports of tree edge {{{p},{v}}} inconsistent"));
                }
                // Child rows are sorted by (unique) port; binary search so
                // validation stays O(m log Δ) on million-node trees.
                let row = self.children.row(p);
                let found = row
                    .binary_search_by_key(&pp, |&(_, port)| port)
                    .is_ok_and(|i| row[i] == (v, pp));
                if !found {
                    return Err(format!("child list of {p} misses {v}"));
                }
            }
        }
        // Acyclicity + reachability: walk up from every node with a step cap.
        for v in 0..n {
            let mut cur = v;
            let mut steps = 0;
            while let Some((p, _, _)) = self.parent[cur] {
                cur = p;
                steps += 1;
                if steps > n {
                    return Err(format!("cycle reached from node {v}"));
                }
            }
            if cur != self.root {
                return Err(format!("node {v} does not reach the root"));
            }
        }
        Ok(())
    }
}

/// Breadth-first spanning tree rooted at `root`.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` out of range.
pub fn bfs_tree(g: &PortGraph, root: NodeId) -> RootedTree {
    let n = g.num_nodes();
    let mut parents = vec![None; n];
    let mut visited = vec![false; n];
    visited[root] = true;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for p in 0..g.degree(v) {
            let (u, _) = g.neighbor_via(v, p);
            if !visited[u] {
                visited[u] = true;
                parents[u] = Some(v);
                queue.push_back(u);
            }
        }
    }
    assert!(visited.iter().all(|&x| x), "graph is disconnected");
    RootedTree::from_parents(g, root, &parents)
}

/// Depth-first spanning tree rooted at `root`, exploring ports in order.
///
/// # Panics
///
/// Panics if `g` is disconnected or `root` out of range.
pub fn dfs_tree(g: &PortGraph, root: NodeId) -> RootedTree {
    let n = g.num_nodes();
    let mut parents = vec![None; n];
    let mut visited = vec![false; n];
    visited[root] = true;
    let mut stack = vec![(root, 0usize)];
    while let Some(&mut (v, ref mut next)) = stack.last_mut() {
        if *next >= g.degree(v) {
            stack.pop();
            continue;
        }
        let p = *next;
        *next += 1;
        let (u, _) = g.neighbor_via(v, p);
        if !visited[u] {
            visited[u] = true;
            parents[u] = Some(v);
            stack.push((u, 0));
        }
    }
    assert!(visited.iter().all(|&x| x), "graph is disconnected");
    RootedTree::from_parents(g, root, &parents)
}

/// A random spanning tree: Kruskal over a uniformly shuffled edge order
/// (not uniform over all spanning trees, but an unbiased-enough baseline
/// for the contribution experiments).
///
/// # Panics
///
/// Panics if `g` is disconnected.
pub fn random_spanning_tree<R: Rng>(g: &PortGraph, root: NodeId, rng: &mut R) -> RootedTree {
    let mut edges: Vec<EdgeRef> = g.edges().collect();
    edges.shuffle(rng);
    let mut uf = UnionFind::new(g.num_nodes());
    let chosen: Vec<EdgeRef> = edges.into_iter().filter(|e| uf.union(e.u, e.v)).collect();
    tree_from_edge_set(g, root, &chosen)
}

/// Minimum-weight spanning tree under the paper's edge weight
/// `w(e) = min(port_u, port_v)` (plain Kruskal) — a natural competitor to
/// [`light_tree`] in experiment T3.
///
/// # Panics
///
/// Panics if `g` is disconnected.
pub fn min_weight_tree(g: &PortGraph, root: NodeId) -> RootedTree {
    let mut edges: Vec<EdgeRef> = g.edges().collect();
    edges.sort_by_key(|e| e.weight());
    let mut uf = UnionFind::new(g.num_nodes());
    let chosen: Vec<EdgeRef> = edges.into_iter().filter(|e| uf.union(e.u, e.v)).collect();
    tree_from_edge_set(g, root, &chosen)
}

/// The light spanning tree `T0` of **Claim 3.1**, with total contribution
/// `Σ #2(w(e)) ≤ 4n`.
///
/// Follows the proof's construction: phase `k = 1, 2, …` identifies the
/// collection of *small* trees (`|T| < 2^k`), selects for each a
/// minimum-weight edge leaving it, adds all selected edges, and breaks any
/// cycle created by discarding one of the selected edges on it (realized
/// here by inserting the selected edges sequentially into a union-find and
/// skipping those that would close a cycle — every skipped edge lies on a
/// cycle all of whose tree-path edges were already inserted).
///
/// # Panics
///
/// Panics if `g` is disconnected.
pub fn light_tree(g: &PortGraph, root: NodeId) -> RootedTree {
    let n = g.num_nodes();
    let mut uf = UnionFind::new(n);
    let mut chosen: Vec<EdgeRef> = Vec::with_capacity(n.saturating_sub(1));
    let mut k = 1u32;
    while chosen.len() + 1 < n {
        // Group nodes by component representative. Ordered map: the phase
        // visits small trees in representative order, so ties between
        // equal-weight outgoing edges resolve identically on every run.
        let mut members: std::collections::BTreeMap<usize, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for v in 0..n {
            members.entry(uf.find(v)).or_default().push(v);
        }
        let threshold = 1usize << k;
        // For each small tree, the minimum-weight outgoing edge.
        let mut selected: Vec<EdgeRef> = Vec::new();
        for (rep, nodes) in &members {
            if nodes.len() >= threshold {
                continue;
            }
            let mut best: Option<EdgeRef> = None;
            for &v in nodes {
                for p in 0..g.degree(v) {
                    let (u, q) = g.neighbor_via(v, p);
                    if uf.find(u) == *rep {
                        continue;
                    }
                    let e = if v < u {
                        EdgeRef {
                            u: v,
                            port_u: p,
                            v: u,
                            port_v: q,
                        }
                    } else {
                        EdgeRef {
                            u,
                            port_u: q,
                            v,
                            port_v: p,
                        }
                    };
                    if best.is_none_or(|b| e.weight() < b.weight()) {
                        best = Some(e);
                    }
                }
            }
            if let Some(e) = best {
                selected.push(e);
            }
            // A small tree with no outgoing edge means a disconnected graph;
            // caught below by the final assertion.
        }
        // When every remaining component has size ≥ 2^k, nothing is small at
        // this phase; the next phase doubles the threshold. A phase with no
        // progress is fine, but the threshold must eventually cover n.
        for e in selected {
            if uf.union(e.u, e.v) {
                chosen.push(e);
            }
        }
        k += 1;
        if k > usize::BITS {
            break; // threshold exceeds any possible component size
        }
    }
    assert_eq!(chosen.len() + 1, n, "graph is disconnected");
    tree_from_edge_set(g, root, &chosen)
}

/// Roots an (unrooted) spanning-tree edge set at `root`.
fn tree_from_edge_set(g: &PortGraph, root: NodeId, edges: &[EdgeRef]) -> RootedTree {
    let n = g.num_nodes();
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len() * 2);
    for e in edges {
        pairs.push((e.u, e.v));
        pairs.push((e.v, e.u));
    }
    let tree_adj = CsrRows::from_pairs(n, &pairs);
    let mut parents = vec![None; n];
    let mut visited = vec![false; n];
    visited[root] = true;
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &u in tree_adj.row(v) {
            if !visited[u] {
                visited[u] = true;
                parents[u] = Some(v);
                queue.push_back(u);
            }
        }
    }
    assert!(
        visited.iter().all(|&x| x),
        "edge set does not span the graph"
    );
    RootedTree::from_parents(g, root, &parents)
}

/// The spanning-tree constructions compared in experiment T3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeAlgorithm {
    /// [`bfs_tree`].
    Bfs,
    /// [`dfs_tree`].
    Dfs,
    /// [`random_spanning_tree`] (takes a seed).
    Random,
    /// [`min_weight_tree`].
    MinWeight,
    /// [`light_tree`] — Claim 3.1.
    Light,
}

impl TreeAlgorithm {
    /// Every algorithm, for sweeps.
    pub const ALL: [TreeAlgorithm; 5] = [
        TreeAlgorithm::Bfs,
        TreeAlgorithm::Dfs,
        TreeAlgorithm::Random,
        TreeAlgorithm::MinWeight,
        TreeAlgorithm::Light,
    ];

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            TreeAlgorithm::Bfs => "bfs",
            TreeAlgorithm::Dfs => "dfs",
            TreeAlgorithm::Random => "random",
            TreeAlgorithm::MinWeight => "min-weight",
            TreeAlgorithm::Light => "light(claim-3.1)",
        }
    }

    /// Runs the algorithm on `g` rooted at `root`.
    pub fn build<R: Rng>(&self, g: &PortGraph, root: NodeId, rng: &mut R) -> RootedTree {
        match self {
            TreeAlgorithm::Bfs => bfs_tree(g, root),
            TreeAlgorithm::Dfs => dfs_tree(g, root),
            TreeAlgorithm::Random => random_spanning_tree(g, root, rng),
            TreeAlgorithm::MinWeight => min_weight_tree(g, root),
            TreeAlgorithm::Light => light_tree(g, root),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bfs_tree_on_cycle() {
        let g = families::cycle(6);
        let t = bfs_tree(&g, 0);
        t.validate(&g).unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.edges(&g).count(), 5);
        assert_eq!(t.depth(3), 3);
        assert!(t.children(0).len() == 2);
    }

    #[test]
    fn dfs_tree_on_cycle_is_path() {
        let g = families::cycle(6);
        let t = dfs_tree(&g, 0);
        t.validate(&g).unwrap();
        assert_eq!(t.depth(5), 5.min(t.depth(5)));
        // DFS on a cycle yields one path: exactly one child at the root.
        assert_eq!(t.children(0).len(), 1);
    }

    #[test]
    fn all_algorithms_produce_valid_spanning_trees() {
        let mut rng = StdRng::seed_from_u64(21);
        for fam in families::Family::ALL {
            let g = fam.build(24, &mut rng);
            for alg in TreeAlgorithm::ALL {
                let t = alg.build(&g, 0, &mut rng);
                t.validate(&g)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", alg.name(), fam.name()));
                assert_eq!(t.edges(&g).count(), g.num_nodes() - 1);
            }
        }
    }

    #[test]
    fn light_tree_contribution_bound_holds() {
        // Claim 3.1: Σ #2(w(e)) ≤ 4n on every family.
        let mut rng = StdRng::seed_from_u64(22);
        for fam in families::Family::ALL {
            for n in [8usize, 40, 100] {
                let g = fam.build(n, &mut rng);
                let t = light_tree(&g, 0);
                let c = t.contribution(&g);
                let bound = 4 * g.num_nodes() as u64;
                assert!(
                    c <= bound,
                    "{} n={}: contribution {c} > 4n = {bound}",
                    fam.name(),
                    g.num_nodes()
                );
            }
        }
    }

    #[test]
    fn light_tree_beats_or_matches_bfs_on_complete() {
        // On K_n with rotational ports, BFS from 0 uses each node's port
        // toward 0, which can be large; the light tree prefers low ports.
        let g = families::complete_rotational(64);
        let light = light_tree(&g, 0).contribution(&g);
        let bfs = bfs_tree(&g, 0).contribution(&g);
        assert!(light <= bfs, "light {light} > bfs {bfs}");
        assert!(light <= 4 * 64);
    }

    #[test]
    fn min_weight_tree_is_minimal_total_weight() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = families::random_connected(20, 0.4, &mut rng);
        let mst: u64 = min_weight_tree(&g, 0).edges(&g).map(|e| e.weight()).sum();
        let rnd: u64 = random_spanning_tree(&g, 0, &mut rng)
            .edges(&g)
            .map(|e| e.weight())
            .sum();
        assert!(mst <= rnd);
    }

    #[test]
    fn from_parents_rejects_bogus_maps() {
        let g = families::path(4);
        // Missing parent for node 3.
        let result = std::panic::catch_unwind(|| {
            RootedTree::from_parents(&g, 0, &[None, Some(0), Some(1), None])
        });
        assert!(result.is_err());
        // Non-edge parent relation.
        let result = std::panic::catch_unwind(|| {
            RootedTree::from_parents(&g, 0, &[None, Some(0), Some(0), Some(2)])
        });
        assert!(result.is_err());
    }

    #[test]
    fn contribution_of_path_tree() {
        // Path ports are all 0/1, so every weight is 0 → #2 = 1 per edge.
        let g = families::path(10);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.contribution(&g), 9);
    }

    #[test]
    fn single_node_tree() {
        let g = crate::portgraph::PortGraph::from_adjacency(vec![vec![]]).unwrap();
        let t = light_tree(&g, 0);
        assert_eq!(t.num_nodes(), 1);
        assert!(t.is_leaf(0));
        assert_eq!(t.contribution(&g), 0);
    }

    #[test]
    fn depths_consistent_with_parents() {
        let mut rng = StdRng::seed_from_u64(24);
        let g = families::random_connected(30, 0.2, &mut rng);
        let t = bfs_tree(&g, 5);
        for v in 0..30 {
            if let Some((p, _, _)) = t.parent(v) {
                assert_eq!(t.depth(v), t.depth(p) + 1);
            }
        }
    }
}
