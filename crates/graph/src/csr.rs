//! Flat compressed-sparse-row storage shared by the graph and tree layers.
//!
//! [`PortGraph`](crate::PortGraph) keeps its port map in CSR form; the
//! structures that used to hand-roll `Vec<Vec<…>>` adjacency (rooted-tree
//! child lists, the edge-set rooting in `spanning`) share this row store
//! instead, so every layer speaks one layout (DESIGN.md §11).

/// Variable-length rows packed into two flat arrays: `offsets` has one
/// entry per row plus a trailing sentinel, and row `r` occupies
/// `items[offsets[r] .. offsets[r + 1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrRows<T> {
    offsets: Vec<usize>,
    items: Vec<T>,
}

impl<T: Copy + Default> CsrRows<T> {
    /// Packs `(row, item)` pairs into `n` rows by stable counting sort:
    /// items land in their row in input order, using exactly two passes
    /// and three allocations regardless of row count.
    pub fn from_pairs(n: usize, pairs: &[(usize, T)]) -> Self {
        let mut offsets = vec![0usize; n + 1];
        for &(row, _) in pairs {
            offsets[row + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        let mut items = vec![T::default(); pairs.len()];
        for &(row, item) in pairs {
            items[cursor[row]] = item;
            cursor[row] += 1;
        }
        CsrRows { offsets, items }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Row `r` as a contiguous slice.
    pub fn row(&self, r: usize) -> &[T] {
        &self.items[self.offsets[r]..self.offsets[r + 1]]
    }

    /// Mutable access to row `r` (e.g. to sort it in place).
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.items[self.offsets[r]..self.offsets[r + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_rows_in_input_order() {
        let pairs = [(2, 'a'), (0, 'b'), (2, 'c'), (0, 'd'), (2, 'e')];
        let rows = CsrRows::from_pairs(4, &pairs);
        assert_eq!(rows.num_rows(), 4);
        assert_eq!(rows.row(0), ['b', 'd']);
        assert_eq!(rows.row(1), []);
        assert_eq!(rows.row(2), ['a', 'c', 'e']);
        assert_eq!(rows.row(3), []);
    }

    #[test]
    fn empty_input_yields_empty_rows() {
        let rows: CsrRows<usize> = CsrRows::from_pairs(3, &[]);
        for r in 0..3 {
            assert_eq!(rows.row(r), []);
        }
    }

    #[test]
    fn rows_are_sortable_in_place() {
        let mut rows = CsrRows::from_pairs(2, &[(0, 9), (0, 3), (0, 7), (1, 1)]);
        rows.row_mut(0).sort_unstable();
        assert_eq!(rows.row(0), [3, 7, 9]);
        assert_eq!(rows.row(1), [1]);
    }
}
