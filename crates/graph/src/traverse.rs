//! Graph traversal utilities: connectivity, BFS distances, components.

use std::collections::VecDeque;

use crate::portgraph::{NodeId, PortGraph};

/// Returns `true` if `g` is connected. Empty and single-node graphs count
/// as connected.
pub fn is_connected(g: &PortGraph) -> bool {
    let n = g.num_nodes();
    if n <= 1 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|d| d.is_some())
}

/// BFS distances from `root`; `None` for unreachable nodes.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs_distances(g: &PortGraph, root: NodeId) -> Vec<Option<usize>> {
    assert!(root < g.num_nodes(), "root out of range");
    let mut dist = vec![None; g.num_nodes()];
    dist[root] = Some(0);
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v].expect("queued nodes have distances");
        for &u in g.neighbors(v) {
            if dist[u].is_none() {
                dist[u] = Some(dv + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The eccentricity-from-`root` (maximum BFS distance to any node), or
/// `None` if the graph is disconnected.
pub fn radius_from(g: &PortGraph, root: NodeId) -> Option<usize> {
    bfs_distances(g, root)
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .map(|ds| ds.into_iter().max().unwrap_or(0))
}

/// Assigns each node a component index; indices are dense starting at 0.
pub fn components(g: &PortGraph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if comp[u] == usize::MAX {
                    comp[u] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    comp
}

/// A disjoint-set forest used by the spanning-tree constructions.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set, with path compression. Iterative so a
    /// million-node degenerate chain cannot overflow the stack.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        true
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }

    /// Number of distinct sets.
    pub fn num_sets(&mut self) -> usize {
        (0..self.parent.len())
            .filter(|&x| self.find(x) == x)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PortGraphBuilder;

    fn path(n: usize) -> PortGraph {
        let mut b = PortGraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(v - 1, v).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        let d = bfs_distances(&g, 2);
        assert_eq!(d, vec![Some(2), Some(1), Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn connectivity_and_components() {
        let g = path(4);
        assert!(is_connected(&g));
        assert_eq!(components(&g), vec![0, 0, 0, 0]);

        let mut b = PortGraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(2, 3).unwrap();
        let g = b.build().unwrap();
        assert!(!is_connected(&g));
        let c = components(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[2], c[3]);
        assert_ne!(c[0], c[2]);
    }

    #[test]
    fn radius_from_endpoints() {
        let g = path(5);
        assert_eq!(radius_from(&g, 0), Some(4));
        assert_eq!(radius_from(&g, 2), Some(2));
    }

    #[test]
    fn radius_none_when_disconnected() {
        let mut b = PortGraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(radius_from(&g, 0), None);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_sets(), 3);
        assert_eq!(uf.set_size(0), 2);
        assert!(uf.union(0, 3));
        assert_eq!(uf.set_size(2), 4);
        assert_eq!(uf.find(0), uf.find(3));
        assert_ne!(uf.find(0), uf.find(4));
    }

    #[test]
    fn single_node_is_connected() {
        let g = PortGraph::from_adjacency(vec![vec![]]).unwrap();
        assert!(is_connected(&g));
        assert_eq!(radius_from(&g, 0), Some(0));
    }
}
