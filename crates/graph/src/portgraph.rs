//! The core port-labeled graph representation.

use std::error::Error;
use std::fmt;

/// Index of a node within a [`PortGraph`] (`0 .. num_nodes`).
///
/// Distinct from the node's *label* ([`PortGraph::label`]): algorithms in
/// the anonymous model never see a `NodeId`, only ports, degrees and
/// (optionally) labels.
pub type NodeId = usize;

/// A local port number at a node (`0 .. deg(v)`).
pub type Port = usize;

/// One undirected edge together with the port numbers at its endpoints.
///
/// The canonical orientation has `u < v` (by node id). The paper's edge
/// weight `w(e) = min(port_u(e), port_v(e))` is exposed as
/// [`EdgeRef::weight`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeRef {
    /// Smaller endpoint (by node id).
    pub u: NodeId,
    /// Port at `u` leading to `v`.
    pub port_u: Port,
    /// Larger endpoint.
    pub v: NodeId,
    /// Port at `v` leading to `u`.
    pub port_v: Port,
}

impl EdgeRef {
    /// The paper's weight `w(e) = min(port_u(e), port_v(e))` (§3).
    pub fn weight(&self) -> u64 {
        self.port_u.min(self.port_v) as u64
    }

    /// The endpoint other than `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("node {x} is not an endpoint of {self:?}")
        }
    }

    /// The port at endpoint `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn port_at(&self, x: NodeId) -> Port {
        if x == self.u {
            self.port_u
        } else if x == self.v {
            self.port_v
        } else {
            panic!("node {x} is not an endpoint of {self:?}")
        }
    }
}

/// Errors reported by [`PortGraph::validate`] and the builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// `adj[v][p] = (u, q)` but `adj[u][q] ≠ (v, p)`.
    AsymmetricPortMap {
        /// Node where the asymmetry was observed.
        node: NodeId,
        /// Port at `node`.
        port: Port,
    },
    /// A self-loop was found; the model forbids them.
    SelfLoop {
        /// Offending node.
        node: NodeId,
    },
    /// Two parallel edges between the same pair of nodes.
    ParallelEdge {
        /// One endpoint.
        u: NodeId,
        /// Other endpoint.
        v: NodeId,
    },
    /// Two nodes share a label.
    DuplicateLabel {
        /// The repeated label value.
        label: u64,
    },
    /// A port or node reference is out of range.
    OutOfRange {
        /// Node whose adjacency refers out of range.
        node: NodeId,
        /// Offending port slot.
        port: Port,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::AsymmetricPortMap { node, port } => {
                write!(f, "asymmetric port map at node {node} port {port}")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::ParallelEdge { u, v } => {
                write!(f, "parallel edge between nodes {u} and {v}")
            }
            GraphError::DuplicateLabel { label } => write!(f, "duplicate node label {label}"),
            GraphError::OutOfRange { node, port } => {
                write!(f, "out-of-range reference at node {node} port {port}")
            }
        }
    }
}

impl Error for GraphError {}

// Sharing a PortGraph across worker threads is load-bearing for the
// parallel runtime; fail compilation loudly if it ever stops being
// Send + Sync (e.g. by gaining interior mutability).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PortGraph>();
};

/// An undirected graph with per-node port numbering — the network model of
/// the paper.
///
/// Every node `v` stores a dense array of ports; port `p` holds the pair
/// `(u, q)` meaning "port `p` at `v` is the edge to `u`, which arrives at
/// `u`'s port `q`". The structural invariants (symmetry, no self-loops, no
/// parallel edges, distinct labels) are checked by [`validate`] and
/// maintained by [`crate::builder::PortGraphBuilder`].
///
/// # Memory layout
///
/// Storage is flat CSR (compressed sparse row): `offsets` has `n + 1`
/// entries, and node `v`'s ports occupy `offsets[v] .. offsets[v + 1]` of
/// the parallel `targets` / `back_ports` arrays. Three contiguous
/// allocations serve any graph size, [`neighbors`](Self::neighbors) is a
/// slice borrow, and a million-node instance costs no per-node pointer
/// chase. See DESIGN.md §11.
///
/// # Examples
///
/// ```
/// use oraclesize_graph::PortGraphBuilder;
///
/// let mut b = PortGraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.degree(1), 2);
/// let (nbr, arrival) = g.neighbor_via(0, 0);
/// assert_eq!(nbr, 1);
/// assert_eq!(g.neighbor_via(1, arrival).0, 0);
/// ```
///
/// [`validate`]: PortGraph::validate
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortGraph {
    /// `offsets[v] .. offsets[v + 1]` spans node `v`'s ports; `n + 1` long.
    offsets: Vec<usize>,
    /// Neighbor reached through each port, in port order.
    targets: Vec<NodeId>,
    /// Arrival port at the neighbor, parallel to `targets`.
    back_ports: Vec<Port>,
    labels: Vec<u64>,
}

impl PortGraph {
    /// Builds a graph directly from adjacency data; prefer
    /// [`crate::builder::PortGraphBuilder`] unless you are constructing a
    /// family with explicit closed-form port maps.
    ///
    /// Labels default to `0..n`. The nested input is flattened into the
    /// CSR layout before validation.
    ///
    /// # Errors
    ///
    /// Returns the first invariant violation found (see [`GraphError`]).
    pub fn from_adjacency(adj: Vec<Vec<(NodeId, Port)>>) -> Result<Self, GraphError> {
        let labels = (0..adj.len() as u64).collect();
        Self::from_adjacency_labeled(adj, labels)
    }

    /// As [`from_adjacency`](Self::from_adjacency) with explicit labels.
    ///
    /// # Errors
    ///
    /// Returns the first invariant violation found, including duplicate
    /// labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != adj.len()`.
    pub fn from_adjacency_labeled(
        adj: Vec<Vec<(NodeId, Port)>>,
        labels: Vec<u64>,
    ) -> Result<Self, GraphError> {
        assert_eq!(adj.len(), labels.len(), "one label per node required");
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut targets = Vec::with_capacity(total);
        let mut back_ports = Vec::with_capacity(total);
        offsets.push(0);
        for ports in &adj {
            for &(u, q) in ports {
                targets.push(u);
                back_ports.push(q);
            }
            offsets.push(targets.len());
        }
        Self::from_csr(offsets, targets, back_ports, labels)
    }

    /// Builds a graph directly from its CSR arrays: `offsets` has `n + 1`
    /// entries with `offsets[0] == 0`, and entry `offsets[v] + p` of the
    /// parallel `targets`/`back_ports` arrays holds node `v`'s port `p`.
    /// The cheapest constructor for large closed-form families — no nested
    /// intermediate is allocated.
    ///
    /// # Errors
    ///
    /// Returns the first invariant violation found (see [`GraphError`]).
    ///
    /// # Panics
    ///
    /// Panics if the array lengths are inconsistent (`offsets` empty or
    /// non-monotonic, `targets`/`back_ports` length mismatch, or one label
    /// per node missing).
    pub fn from_csr(
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        back_ports: Vec<Port>,
        labels: Vec<u64>,
    ) -> Result<Self, GraphError> {
        assert!(!offsets.is_empty(), "offsets needs a leading 0 entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "offsets must span targets"
        );
        assert_eq!(
            targets.len(),
            back_ports.len(),
            "targets and back_ports must be parallel"
        );
        assert_eq!(
            offsets.len() - 1,
            labels.len(),
            "one label per node required"
        );
        let g = PortGraph {
            offsets,
            targets,
            back_ports,
            labels,
        };
        g.validate()?;
        Ok(g)
    }

    /// Wraps the graph in an [`Arc`](std::sync::Arc) for cross-thread
    /// sharing — the form `oraclesize-runtime` instances and worker pools
    /// consume. The graph is immutable after construction, so one shared
    /// copy serves any number of concurrent engine runs.
    pub fn into_shared(self) -> std::sync::Arc<Self> {
        std::sync::Arc::new(self)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v` (also the number of ports at `v`).
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The label of `v` — the identity an algorithm may see in the
    /// non-anonymous model.
    pub fn label(&self, v: NodeId) -> u64 {
        self.labels[v]
    }

    /// Node with the given label, if any (linear scan).
    pub fn node_by_label(&self, label: u64) -> Option<NodeId> {
        self.labels.iter().position(|&l| l == label)
    }

    /// Follows port `p` out of `v`: returns `(u, q)` where `u` is the
    /// neighbor and `q` the arrival port at `u`.
    ///
    /// # Panics
    ///
    /// Panics if `p ≥ deg(v)`.
    pub fn neighbor_via(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        assert!(
            p < self.degree(v),
            "port {p} out of range at node {v} (degree {})",
            self.degree(v)
        );
        let i = self.offsets[v] + p;
        (self.targets[i], self.back_ports[i])
    }

    /// The port at `v` leading to `u`, or `None` if `{u,v}` is not an edge.
    pub fn port_toward(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.neighbors(v).iter().position(|&w| w == u)
    }

    /// Returns `true` if `{u,v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.port_toward(u, v).is_some()
    }

    /// The edge `{u,v}` with its ports, or `None` if absent.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeRef> {
        let pu = self.port_toward(u, v)?;
        let pv = self.back_ports[self.offsets[u] + pu];
        let (a, pa, b, pb) = if u < v {
            (u, pu, v, pv)
        } else {
            (v, pv, u, pu)
        };
        Some(EdgeRef {
            u: a,
            port_u: pa,
            v: b,
            port_v: pb,
        })
    }

    /// Iterates over all undirected edges in canonical (`u < v`) order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            let start = self.offsets[u];
            self.neighbors(u)
                .iter()
                .enumerate()
                .filter(move |&(_, &v)| u < v)
                .map(move |(pu, &v)| EdgeRef {
                    u,
                    port_u: pu,
                    v,
                    port_v: self.back_ports[start + pu],
                })
        })
    }

    /// The neighbors of `v` in port order, as a contiguous slice: entry `p`
    /// is the node reached through port `p`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The arrival ports of `v`'s edges in port order, parallel to
    /// [`neighbors`](Self::neighbors): following port `p` out of `v`
    /// arrives at `neighbors(v)[p]`'s port `arrival_ports(v)[p]`.
    pub fn arrival_ports(&self, v: NodeId) -> &[Port] {
        &self.back_ports[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Returns `true` if the graph is connected (the model assumes it; some
    /// intermediate constructions check it explicitly). The empty graph is
    /// considered connected.
    pub fn is_connected(&self) -> bool {
        crate::traverse::is_connected(self)
    }

    /// Checks every structural invariant of the model.
    ///
    /// # Errors
    ///
    /// The first violation found: asymmetric port maps, self-loops,
    /// parallel edges, out-of-range references, or duplicate labels.
    pub fn validate(&self) -> Result<(), GraphError> {
        let n = self.num_nodes();
        // `seen_at[u] == v` marks u as already adjacent to the node v being
        // scanned — an O(m) parallel-edge check with the same first-violation
        // order a per-node set would report.
        let mut seen_at = vec![usize::MAX; n];
        for v in 0..n {
            let start = self.offsets[v];
            for p in 0..self.degree(v) {
                let u = self.targets[start + p];
                let q = self.back_ports[start + p];
                if u >= n {
                    return Err(GraphError::OutOfRange { node: v, port: p });
                }
                if u == v {
                    return Err(GraphError::SelfLoop { node: v });
                }
                if seen_at[u] == v {
                    return Err(GraphError::ParallelEdge { u: v, v: u });
                }
                seen_at[u] = v;
                if q >= self.degree(u) {
                    return Err(GraphError::OutOfRange { node: v, port: p });
                }
                let j = self.offsets[u] + q;
                if (self.targets[j], self.back_ports[j]) != (v, p) {
                    return Err(GraphError::AsymmetricPortMap { node: v, port: p });
                }
            }
        }
        let mut labels: Vec<u64> = self.labels.clone();
        labels.sort_unstable();
        for w in labels.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateLabel { label: w[0] });
            }
        }
        Ok(())
    }

    /// Replaces all labels. Used by experiments that re-label nodes `1..=n`
    /// (the lower bounds assume labels `1,…,n`) or anonymize.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateLabel`] if labels repeat.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != num_nodes()`.
    pub fn set_labels(&mut self, labels: Vec<u64>) -> Result<(), GraphError> {
        assert_eq!(labels.len(), self.num_nodes(), "one label per node");
        let old = std::mem::replace(&mut self.labels, labels);
        // Only the label invariant can change here; re-check just it so a
        // million-node relabel doesn't re-walk every edge.
        let mut sorted = self.labels.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                self.labels = old;
                return Err(GraphError::DuplicateLabel { label: w[0] });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PortGraphBuilder;

    fn triangle() -> PortGraph {
        let mut b = PortGraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn triangle_basic_queries() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.is_connected());
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn ports_are_symmetric() {
        let g = triangle();
        for v in 0..3 {
            for p in 0..g.degree(v) {
                let (u, q) = g.neighbor_via(v, p);
                assert_eq!(g.neighbor_via(u, q), (v, p));
            }
        }
    }

    #[test]
    fn neighbors_slice_matches_port_order() {
        let g = triangle();
        for v in 0..3 {
            let nbrs = g.neighbors(v);
            let arrivals = g.arrival_ports(v);
            assert_eq!(nbrs.len(), g.degree(v));
            assert_eq!(arrivals.len(), g.degree(v));
            for p in 0..g.degree(v) {
                assert_eq!(g.neighbor_via(v, p), (nbrs[p], arrivals[p]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn neighbor_via_panics_past_degree() {
        let g = triangle();
        g.neighbor_via(0, 2);
    }

    #[test]
    fn edge_between_and_weight() {
        let g = triangle();
        let e = g.edge_between(0, 2).unwrap();
        assert_eq!(e.u, 0);
        assert_eq!(e.v, 2);
        assert_eq!(e.weight(), e.port_u.min(e.port_v) as u64);
        assert_eq!(e.other(0), 2);
        assert_eq!(e.port_at(2), e.port_v);
        assert!(g.edge_between(0, 0).is_none());
    }

    #[test]
    fn edges_iterates_each_once_canonical() {
        let g = triangle();
        let edges: Vec<EdgeRef> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for e in &edges {
            assert!(e.u < e.v);
        }
    }

    #[test]
    fn from_csr_round_trips_adjacency() {
        let nested = triangle();
        let mut offsets = vec![0];
        let mut targets = Vec::new();
        let mut back_ports = Vec::new();
        for v in 0..nested.num_nodes() {
            targets.extend_from_slice(nested.neighbors(v));
            back_ports.extend_from_slice(nested.arrival_ports(v));
            offsets.push(targets.len());
        }
        let labels = (0..nested.num_nodes() as u64).collect();
        let rebuilt = PortGraph::from_csr(offsets, targets, back_ports, labels).unwrap();
        assert_eq!(rebuilt, nested);
    }

    #[test]
    fn validate_detects_asymmetry() {
        // 0 -> (1, port 0) but 1 -> (0, port 1): bogus.
        let adj = vec![vec![(1, 0)], vec![(0, 1)]];
        assert!(matches!(
            PortGraph::from_adjacency(adj),
            Err(GraphError::AsymmetricPortMap { .. })
        ));
    }

    #[test]
    fn validate_detects_self_loop() {
        let adj = vec![vec![(0, 0)]];
        assert!(matches!(
            PortGraph::from_adjacency(adj),
            Err(GraphError::SelfLoop { .. })
        ));
    }

    #[test]
    fn validate_detects_parallel_edges() {
        let adj = vec![vec![(1, 0), (1, 1)], vec![(0, 0), (0, 1)]];
        assert!(matches!(
            PortGraph::from_adjacency(adj),
            Err(GraphError::ParallelEdge { .. })
        ));
    }

    #[test]
    fn validate_detects_out_of_range() {
        let adj = vec![vec![(5, 0)]];
        assert!(matches!(
            PortGraph::from_adjacency(adj),
            Err(GraphError::OutOfRange { .. })
        ));
    }

    #[test]
    fn validate_detects_duplicate_labels() {
        let adj = vec![vec![(1, 0)], vec![(0, 0)]];
        assert!(matches!(
            PortGraph::from_adjacency_labeled(adj, vec![7, 7]),
            Err(GraphError::DuplicateLabel { label: 7 })
        ));
    }

    #[test]
    fn set_labels_rolls_back_on_error() {
        let mut g = triangle();
        let before: Vec<u64> = (0..3).map(|v| g.label(v)).collect();
        assert!(g.set_labels(vec![1, 1, 2]).is_err());
        let after: Vec<u64> = (0..3).map(|v| g.label(v)).collect();
        assert_eq!(before, after);
        g.set_labels(vec![10, 20, 30]).unwrap();
        assert_eq!(g.label(2), 30);
        assert_eq!(g.node_by_label(20), Some(1));
        assert_eq!(g.node_by_label(99), None);
    }

    #[test]
    fn error_display_nonempty() {
        let errors = [
            GraphError::AsymmetricPortMap { node: 1, port: 2 },
            GraphError::SelfLoop { node: 0 },
            GraphError::ParallelEdge { u: 0, v: 1 },
            GraphError::DuplicateLabel { label: 3 },
            GraphError::OutOfRange { node: 4, port: 5 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn single_node_graph() {
        let g = PortGraph::from_adjacency(vec![vec![]]).unwrap();
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn into_shared_preserves_the_graph() {
        let g = PortGraph::from_adjacency(vec![vec![(1, 0)], vec![(0, 0)]]).unwrap();
        let shared = g.clone().into_shared();
        assert_eq!(*shared, g);
        assert_eq!(std::sync::Arc::strong_count(&shared), 1);
    }
}
