//! Standard graph families used by the experiments.
//!
//! Every generator returns a validated, connected [`PortGraph`]. Port
//! numberings are deterministic except where a generator takes an `Rng`.
//! The [`Family`] enum names the sweep set used across benches and
//! EXPERIMENTS.md.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::builder::PortGraphBuilder;
use crate::portgraph::PortGraph;

/// A path `0 − 1 − … − (n−1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> PortGraph {
    assert!(n > 0, "path needs at least one node");
    let mut b = PortGraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v - 1, v).expect("path edges are simple");
    }
    b.build().expect("path is valid")
}

/// A cycle on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> PortGraph {
    assert!(n >= 3, "cycle needs at least three nodes");
    let mut b = PortGraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n).expect("cycle edges are simple");
    }
    b.build().expect("cycle is valid")
}

/// A star: node 0 joined to nodes `1..n`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> PortGraph {
    assert!(n >= 2, "star needs at least two nodes");
    let mut b = PortGraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v).expect("star edges are simple");
    }
    b.build().expect("star is valid")
}

/// The complete graph `K*_n` with the *rotational* port labeling: port `p`
/// at node `i` leads to node `(i + p + 1) mod n`.
///
/// This replaces the paper's `(i−j) mod (n−1)` formula, which is not
/// injective (see DESIGN.md §1, fidelity notes); the rotational labeling is
/// the standard fix and yields ports `0..n−2` bijectively at every node.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete_rotational(n: usize) -> PortGraph {
    assert!(n >= 2, "complete graph needs at least two nodes");
    let mut adj = Vec::with_capacity(n);
    for i in 0..n {
        let mut ports = Vec::with_capacity(n - 1);
        for p in 0..n - 1 {
            let j = (i + p + 1) % n;
            // Arrival port q at j satisfies (j + q + 1) mod n == i.
            let q = (i + n - j - 1) % n;
            ports.push((j, q));
        }
        adj.push(ports);
    }
    PortGraph::from_adjacency(adj).expect("rotational labeling is symmetric")
}

/// A `w × h` grid (4-neighbor mesh).
///
/// # Panics
///
/// Panics if `w == 0 || h == 0`.
pub fn grid(w: usize, h: usize) -> PortGraph {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let idx = |x: usize, y: usize| y * w + x;
    let mut b = PortGraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(idx(x, y), idx(x + 1, y)).expect("grid simple");
            }
            if y + 1 < h {
                b.add_edge(idx(x, y), idx(x, y + 1)).expect("grid simple");
            }
        }
    }
    b.build().expect("grid is valid")
}

/// A `w × h` torus (wrap-around mesh); requires `w, h ≥ 3` to stay simple.
///
/// # Panics
///
/// Panics if `w < 3 || h < 3`.
pub fn torus(w: usize, h: usize) -> PortGraph {
    assert!(w >= 3 && h >= 3, "torus needs dimensions at least 3");
    let idx = |x: usize, y: usize| y * w + x;
    let mut b = PortGraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            b.add_edge(idx(x, y), idx((x + 1) % w, y))
                .expect("torus simple");
            b.add_edge(idx(x, y), idx(x, (y + 1) % h))
                .expect("torus simple");
        }
    }
    b.build().expect("torus is valid")
}

/// The `d`-dimensional hypercube (`2^d` nodes); port `k` flips bit `k`.
///
/// # Panics
///
/// Panics if `d > 20` (guard against accidental huge graphs).
pub fn hypercube(d: u32) -> PortGraph {
    assert!(d <= 20, "hypercube dimension too large");
    let n = 1usize << d;
    let mut adj = Vec::with_capacity(n);
    for v in 0..n {
        let ports = (0..d as usize).map(|k| (v ^ (1 << k), k)).collect();
        adj.push(ports);
    }
    PortGraph::from_adjacency(adj).expect("hypercube is symmetric")
}

/// A complete binary tree on `n` nodes (heap order: children of `v` are
/// `2v+1`, `2v+2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> PortGraph {
    assert!(n > 0, "tree needs at least one node");
    let mut b = PortGraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) / 2, v).expect("tree edges are simple");
    }
    b.build().expect("binary tree is valid")
}

/// A lollipop: a clique on `⌈n/2⌉` nodes with a path of the remaining nodes
/// attached. A classic stress case — high-degree cluster plus long tail.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn lollipop(n: usize) -> PortGraph {
    assert!(n >= 4, "lollipop needs at least four nodes");
    let k = n.div_ceil(2);
    let mut b = PortGraphBuilder::new(n);
    for i in 0..k {
        for j in i + 1..k {
            b.add_edge(i, j).expect("clique edges are simple");
        }
    }
    for v in k..n {
        b.add_edge(v - 1, v).expect("path edges are simple");
    }
    b.build().expect("lollipop is valid")
}

/// A caterpillar: a spine path with a leg hanging off every spine node —
/// maximal leaf count among trees, a stress case for child-port lists.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn caterpillar(n: usize) -> PortGraph {
    assert!(n >= 2, "caterpillar needs at least two nodes");
    let spine = n.div_ceil(2);
    let mut b = PortGraphBuilder::new(n);
    for v in 1..spine {
        b.add_edge(v - 1, v).expect("spine edges are simple");
    }
    for leg in spine..n {
        b.add_edge(leg - spine, leg).expect("leg edges are simple");
    }
    b.build().expect("caterpillar is valid")
}

/// An Erdős–Rényi `G(n, p)` conditioned on connectivity: edges are sampled
/// independently, then any disconnected components are stitched to the
/// giant one with single random edges (each stitch chooses random endpoints
/// that do not create parallels).
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn random_connected<R: Rng>(n: usize, p: f64, rng: &mut R) -> PortGraph {
    assert!(n > 0, "graph needs at least one node");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut b = PortGraphBuilder::new(n);
    let mut present = vec![false; n * n];
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p) {
                b.add_edge(u, v).expect("fresh pair");
                present[u * n + v] = true;
            }
        }
    }
    // Stitch components: union-find over sampled edges.
    let mut uf = crate::traverse::UnionFind::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if present[u * n + v] {
                uf.union(u, v);
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let anchor = order[0];
    for &v in &order[1..] {
        if uf.find(v) != uf.find(anchor) {
            // Connect v's component to anchor's with one edge.
            let (a, bnode) = (v, anchor);
            let (lo, hi) = (a.min(bnode), a.max(bnode));
            if !present[lo * n + hi] {
                b.add_edge(lo, hi).expect("checked not present");
                present[lo * n + hi] = true;
            }
            uf.union(a, bnode);
        }
    }
    b.shuffle_ports(rng);
    let g = b.build().expect("random graph is valid");
    debug_assert!(g.is_connected());
    g
}

/// A uniformly random labeled tree on `n` nodes (random Prüfer sequence),
/// with shuffled ports.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> PortGraph {
    assert!(n > 0, "tree needs at least one node");
    let mut b = PortGraphBuilder::new(n);
    if n >= 2 {
        let edges = prufer_random_tree(n, rng);
        for (u, v) in edges {
            b.add_edge(u, v).expect("tree edges are simple");
        }
        b.shuffle_ports(rng);
    }
    b.build().expect("random tree is valid")
}

/// Decodes a uniformly random Prüfer sequence into tree edges.
fn prufer_random_tree<R: Rng>(n: usize, rng: &mut R) -> Vec<(usize, usize)> {
    if n == 2 {
        return vec![(0, 1)];
    }
    let seq: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &s in &seq {
        degree[s] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &s in &seq {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("tree always has a leaf");
        edges.push((leaf.min(s), leaf.max(s)));
        degree[leaf] -= 1;
        degree[s] -= 1;
        if degree[s] == 1 {
            leaves.push(std::cmp::Reverse(s));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(bv) = leaves.pop().expect("two leaves remain");
    edges.push((a.min(bv), a.max(bv)));
    edges
}

/// The named families swept by experiments T1–T4 and the benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// [`path`].
    Path,
    /// [`cycle`].
    Cycle,
    /// [`complete_rotational`].
    Complete,
    /// [`hypercube`] of dimension `⌊log2 n⌋`.
    Hypercube,
    /// Near-square [`grid`].
    Grid,
    /// [`lollipop`].
    Lollipop,
    /// [`binary_tree`].
    BinaryTree,
    /// [`random_connected`] with `p = 2 ln n / n` (safely above the
    /// connectivity threshold).
    RandomSparse,
    /// [`random_connected`] with `p = 0.3`.
    RandomDense,
    /// [`random_tree`].
    RandomTree,
    /// Near-square [`torus`] (at least 3×3).
    Torus,
    /// [`star`] — one hub of degree `n − 1`.
    Star,
    /// [`caterpillar`].
    Caterpillar,
}

impl Family {
    /// Every family, for sweeps.
    pub const ALL: [Family; 13] = [
        Family::Path,
        Family::Cycle,
        Family::Complete,
        Family::Hypercube,
        Family::Grid,
        Family::Lollipop,
        Family::BinaryTree,
        Family::RandomSparse,
        Family::RandomDense,
        Family::RandomTree,
        Family::Torus,
        Family::Star,
        Family::Caterpillar,
    ];

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Complete => "complete",
            Family::Hypercube => "hypercube",
            Family::Grid => "grid",
            Family::Lollipop => "lollipop",
            Family::BinaryTree => "binary-tree",
            Family::RandomSparse => "random-sparse",
            Family::RandomDense => "random-dense",
            Family::RandomTree => "random-tree",
            Family::Torus => "torus",
            Family::Star => "star",
            Family::Caterpillar => "caterpillar",
        }
    }

    /// Builds an instance with *approximately* `n` nodes (exact for most
    /// families; hypercube rounds down to a power of two, grid to a
    /// near-square rectangle).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (the smallest size every family supports).
    pub fn build<R: Rng>(&self, n: usize, rng: &mut R) -> PortGraph {
        assert!(n >= 4, "families are defined for n >= 4");
        match self {
            Family::Path => path(n),
            Family::Cycle => cycle(n),
            Family::Complete => complete_rotational(n),
            Family::Hypercube => hypercube((usize::BITS - 1 - n.leading_zeros()).min(20)),
            Family::Grid => {
                let w = (n as f64).sqrt().round() as usize;
                let w = w.max(2);
                grid(w, n.div_ceil(w).max(2))
            }
            Family::Lollipop => lollipop(n),
            Family::BinaryTree => binary_tree(n),
            Family::RandomSparse => {
                let p = (2.0 * (n as f64).ln() / n as f64).min(1.0);
                random_connected(n, p, rng)
            }
            Family::RandomDense => random_connected(n, 0.3, rng),
            Family::RandomTree => random_tree(n, rng),
            Family::Torus => {
                let w = ((n as f64).sqrt().round() as usize).max(3);
                torus(w, (n.div_ceil(w)).max(3))
            }
            Family::Star => star(n),
            Family::Caterpillar => caterpillar(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        g.validate().unwrap();
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 7);
        assert!((0..7).all(|v| g.degree(v) == 2));
        assert!(g.is_connected());
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert!((1..6).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_rotational_is_complete_and_valid() {
        for n in [2usize, 3, 5, 8, 13] {
            let g = complete_rotational(n);
            g.validate().unwrap();
            assert_eq!(g.num_edges(), n * (n - 1) / 2, "n={n}");
            for i in 0..n {
                assert_eq!(g.degree(i), n - 1);
                for j in 0..n {
                    if i != j {
                        assert!(g.has_edge(i, j), "missing {{{i},{j}}} n={n}");
                    }
                }
            }
        }
    }

    #[test]
    fn complete_rotational_port_formula() {
        let n = 9;
        let g = complete_rotational(n);
        for i in 0..n {
            for p in 0..n - 1 {
                assert_eq!(g.neighbor_via(i, p).0, (i + p + 1) % n);
            }
        }
    }

    #[test]
    fn grid_and_torus_shapes() {
        let g = grid(4, 3);
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2); // horizontal + vertical
        assert!(g.is_connected());

        let t = torus(4, 3);
        assert_eq!(t.num_edges(), 2 * 12);
        assert!((0..12).all(|v| t.degree(v) == 4));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.num_nodes(), 16);
        assert!((0..16).all(|v| g.degree(v) == 4));
        assert!(g.is_connected());
        // Port k flips bit k.
        assert_eq!(g.neighbor_via(0b0101, 1).0, 0b0111);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
    }

    #[test]
    fn lollipop_shape() {
        let g = lollipop(10);
        assert_eq!(g.num_nodes(), 10);
        assert!(g.is_connected());
        let k = 5;
        assert_eq!(g.degree(9), 1);
        assert_eq!(g.degree(0), k - 1);
    }

    #[test]
    fn random_connected_is_connected_various_p() {
        let mut rng = StdRng::seed_from_u64(7);
        for p in [0.0, 0.05, 0.5, 1.0] {
            for n in [1usize, 2, 5, 30] {
                let g = random_connected(n, p, &mut rng);
                assert!(g.is_connected(), "n={n} p={p}");
                g.validate().unwrap();
            }
        }
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 2, 3, 10, 64] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.num_edges(), n - 1.min(n), "n={n}");
            assert!(g.is_connected());
        }
    }

    #[test]
    fn random_tree_degree_distribution_sane() {
        // Across many samples, leaves exist and max degree stays below n.
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let g = random_tree(30, &mut rng);
            assert!((0..30).any(|v| g.degree(v) == 1));
        }
    }

    #[test]
    fn family_sweep_builds_and_validates() {
        let mut rng = StdRng::seed_from_u64(5);
        for fam in Family::ALL {
            for n in [8usize, 33, 64] {
                let g = fam.build(n, &mut rng);
                g.validate()
                    .unwrap_or_else(|e| panic!("{} n={n}: {e}", fam.name()));
                assert!(g.is_connected(), "{} n={n}", fam.name());
                assert!(g.num_nodes() >= 4, "{} n={n}", fam.name());
            }
        }
    }

    #[test]
    fn family_names_unique() {
        let mut names: Vec<&str> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }
}
