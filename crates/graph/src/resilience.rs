//! Crash-set generation for the robustness experiments.
//!
//! Fault experiments want to crash nodes *without* making the task
//! impossible: a crash set that disconnects the survivors (or isolates the
//! source) turns "the scheme failed" and "no scheme could succeed" into the
//! same observation. [`connectivity_preserving_crash_set`] builds a seeded,
//! reproducible crash set under which the surviving subgraph stays
//! connected, so any node left uninformed is the scheme's fault.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::portgraph::{NodeId, PortGraph};

/// Picks up to `max_crashes` nodes to crash such that the non-crashed
/// nodes still form a connected subgraph containing every node in
/// `protect` (typically the source).
///
/// Greedy and seeded: candidates are considered in a seeded random order
/// and a node joins the crash set iff the survivors remain connected
/// without it. The result is deterministic for a given `(graph, protect,
/// max_crashes, seed)` and may be smaller than `max_crashes` when the
/// graph has too few expendable nodes (on a tree only leaves qualify; on a
/// path at most the two endpoints not in `protect`).
///
/// # Panics
///
/// Panics if any node in `protect` is out of range.
pub fn connectivity_preserving_crash_set(
    g: &PortGraph,
    protect: &[NodeId],
    max_crashes: usize,
    seed: u64,
) -> Vec<NodeId> {
    let n = g.num_nodes();
    for &v in protect {
        assert!(v < n, "protected node {v} out of range for n={n}");
    }
    let mut protected = vec![false; n];
    for &v in protect {
        protected[v] = true;
    }

    let mut candidates: Vec<NodeId> = (0..n).filter(|&v| !protected[v]).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates with the seeded RNG: the candidate order (and hence the
    // greedy outcome) depends only on the seed.
    for i in (1..candidates.len()).rev() {
        let j = rng.gen_range(0..=i);
        candidates.swap(i, j);
    }

    let mut crashed = vec![false; n];
    let mut picked = Vec::new();
    for v in candidates {
        if picked.len() >= max_crashes {
            break;
        }
        crashed[v] = true;
        if survivors_connected(g, &crashed) {
            picked.push(v);
        } else {
            crashed[v] = false;
        }
    }
    picked.sort_unstable();
    picked
}

/// BFS over non-crashed nodes: `true` iff they form one connected
/// component (vacuously true when none survive).
fn survivors_connected(g: &PortGraph, crashed: &[bool]) -> bool {
    let n = g.num_nodes();
    let Some(start) = (0..n).find(|&v| !crashed[v]) else {
        return true;
    };
    let mut seen = vec![false; n];
    seen[start] = true;
    let mut queue = std::collections::VecDeque::from([start]);
    let mut reached = 1usize;
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if !crashed[u] && !seen[u] {
                seen[u] = true;
                reached += 1;
                queue.push_back(u);
            }
        }
    }
    reached == crashed.iter().filter(|&&c| !c).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    fn check_invariants(g: &PortGraph, protect: &[NodeId], set: &[NodeId]) {
        let mut crashed = vec![false; g.num_nodes()];
        for &v in set {
            assert!(!protect.contains(&v), "protected node {v} crashed");
            assert!(!crashed[v], "node {v} picked twice");
            crashed[v] = true;
        }
        assert!(survivors_connected(g, &crashed));
    }

    #[test]
    fn star_can_lose_every_leaf_but_never_the_hub() {
        let g = families::star(9);
        let set = connectivity_preserving_crash_set(&g, &[0], 100, 7);
        assert_eq!(set, (1..9).collect::<Vec<_>>());
        check_invariants(&g, &[0], &set);
        // Protecting a leaf keeps the hub alive too: removing the hub would
        // disconnect the remaining leaves.
        let set = connectivity_preserving_crash_set(&g, &[3], 100, 7);
        assert!(!set.contains(&0));
        assert!(!set.contains(&3));
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn path_only_sheds_its_endpoints() {
        let g = families::path(6);
        let set = connectivity_preserving_crash_set(&g, &[2], 1, 7);
        // Any internal crash disconnects a path; with one crash allowed the
        // pick must be an endpoint.
        assert!(set == vec![0] || set == vec![5], "got {set:?}");
        check_invariants(&g, &[2], &set);
    }

    #[test]
    fn respects_max_crashes_and_seed_determinism() {
        let g = families::complete_rotational(12);
        let a = connectivity_preserving_crash_set(&g, &[0], 4, 42);
        let b = connectivity_preserving_crash_set(&g, &[0], 4, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4, "complete graph can always shed 4 of 11");
        check_invariants(&g, &[0], &a);
        let c = connectivity_preserving_crash_set(&g, &[0], 4, 43);
        // Different seeds explore different orders on a symmetric graph;
        // both must still be valid.
        check_invariants(&g, &[0], &c);
    }

    #[test]
    fn zero_budget_returns_empty() {
        let g = families::cycle(8);
        assert!(connectivity_preserving_crash_set(&g, &[0], 0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn protecting_a_missing_node_panics() {
        let g = families::cycle(4);
        connectivity_preserving_crash_set(&g, &[4], 1, 0);
    }
}
