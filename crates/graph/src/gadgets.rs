//! The paper's lower-bound constructions.
//!
//! * [`subdivide_edges`] — the graphs `G_{n,S}` of Theorem 2.2: a degree-2
//!   node is hidden inside each edge of `S`, keeping the port numbers at the
//!   original endpoints unchanged, so a scheme cannot tell a subdivided edge
//!   from an original one without traversing it.
//! * [`clique_gadget_graph`] — the graphs `G_{n,S,C}` of Theorem 3.2: each
//!   edge `e_i ∈ S` is replaced by a `k`-clique `H_i` missing one
//!   adversarially chosen edge `f_i = {a_i, b_i}`; the clique is spliced
//!   into `e_i` through `a_i` and `b_i`, again preserving the outside port
//!   numbers.
//!
//! Both constructions take any base [`PortGraph`]; the paper instantiates
//! them on [`crate::families::complete_rotational`].

use rand::seq::SliceRandom;
use rand::Rng;

use crate::portgraph::{EdgeRef, NodeId, PortGraph};

/// Inserts a degree-2 node in the middle of each edge in `subdivided`
/// (the construction `G_{n,S}`, Theorem 2.2).
///
/// For the `i`-th edge `{u, v}` (with `label(u) < label(v)`), the new node
/// `w_i` gets node id `n + i`, label `max_label + 1 + i`, port `0` toward
/// `u` and port `1` toward `v`; the ports at `u` and `v` are untouched. The
/// order of `subdivided` is significant: the paper's edge-discovery label of
/// a hidden node is its rank in `S`.
///
/// # Panics
///
/// Panics if an edge of `subdivided` is not present in `g`, or if the same
/// edge appears twice.
pub fn subdivide_edges(g: &PortGraph, subdivided: &[EdgeRef]) -> PortGraph {
    let n = g.num_nodes();
    let m = subdivided.len();
    // Copy the base graph's CSR arrays and append the hidden nodes at the
    // end — original node spans keep their offsets, so the splice below is
    // index arithmetic, never a reallocation per node.
    let mut offsets = Vec::with_capacity(n + m + 1);
    let mut targets: Vec<NodeId> = Vec::with_capacity(g.num_edges() * 2 + m * 2);
    let mut back_ports: Vec<usize> = Vec::with_capacity(g.num_edges() * 2 + m * 2);
    offsets.push(0);
    for v in 0..n {
        targets.extend_from_slice(g.neighbors(v));
        back_ports.extend_from_slice(g.arrival_ports(v));
        offsets.push(targets.len());
    }
    let mut labels: Vec<u64> = (0..n).map(|v| g.label(v)).collect();
    let max_label = labels.iter().copied().max().unwrap_or(0);

    let mut seen = std::collections::BTreeSet::new();
    for (i, e) in subdivided.iter().enumerate() {
        // Canonical-orientation port lookup instead of a neighbor scan:
        // O(1) per edge where `edge_between` is O(deg).
        let present = e.u < e.v
            && e.port_u < g.degree(e.u)
            && g.neighbor_via(e.u, e.port_u) == (e.v, e.port_v);
        assert!(present, "edge {e:?} not present in base graph");
        assert!(seen.insert((e.u, e.v)), "edge {e:?} subdivided twice");
        let w = n + i;
        // Orient by label as the paper does.
        let (a, pa, b, pb) = if g.label(e.u) < g.label(e.v) {
            (e.u, e.port_u, e.v, e.port_v)
        } else {
            (e.v, e.port_v, e.u, e.port_u)
        };
        targets[offsets[a] + pa] = w;
        back_ports[offsets[a] + pa] = 0;
        targets[offsets[b] + pb] = w;
        back_ports[offsets[b] + pb] = 1;
        targets.push(a);
        back_ports.push(pa);
        targets.push(b);
        back_ports.push(pb);
        offsets.push(targets.len());
        labels.push(max_label + 1 + i as u64);
    }
    PortGraph::from_csr(offsets, targets, back_ports, labels)
        .expect("subdivision preserves invariants")
}

/// Chooses `m` distinct edges of `g` uniformly at random — a random `S` for
/// the constructions above.
///
/// # Panics
///
/// Panics if `m` exceeds the number of edges.
pub fn random_distinct_edges<R: Rng>(g: &PortGraph, m: usize, rng: &mut R) -> Vec<EdgeRef> {
    let mut edges: Vec<EdgeRef> = g.edges().collect();
    assert!(m <= edges.len(), "requested {m} of {} edges", edges.len());
    edges.shuffle(rng);
    edges.truncate(m);
    edges
}

/// The missing-edge choices `C = ((a_1,b_1), …)` for [`clique_gadget_graph`]:
/// local node index pairs within each clique, `a < b < k`.
pub type MissingEdges = Vec<(usize, usize)>;

/// Samples a uniformly random `C` for `num_gadgets` cliques of size `k`.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn random_missing_edges<R: Rng>(num_gadgets: usize, k: usize, rng: &mut R) -> MissingEdges {
    assert!(k >= 2, "cliques need at least two nodes");
    (0..num_gadgets)
        .map(|_| {
            let a = rng.gen_range(0..k - 1);
            let b = rng.gen_range(a + 1..k);
            (a, b)
        })
        .collect()
}

/// Builds `G_{n,S,C}` (Theorem 3.2): replaces each edge `e_i ∈ s` of the
/// base graph by a `k`-clique `H_i` (rotational internal port labeling)
/// missing its edge `f_i = c[i] = {a_i, b_i}`; `a_i` is joined to the
/// endpoint of `e_i` with the smaller label and `b_i` to the other, reusing
/// the port freed by `f_i` on the clique side and the ports of `e_i` on the
/// base side.
///
/// Clique `H_i` occupies node ids `n + i·k ‥ n + (i+1)·k` with labels
/// `max_label + 1 + i·k + a`. Every clique node ends with degree `k − 1`,
/// exactly as in the paper.
///
/// # Panics
///
/// Panics if `k < 3` (the freed-port splice needs the clique to have
/// internal edges), if `s` and `c` differ in length, if an edge of `s` is
/// absent or repeated, or if some pair in `c` is not `a < b < k`.
pub fn clique_gadget_graph(g: &PortGraph, k: usize, s: &[EdgeRef], c: &MissingEdges) -> PortGraph {
    assert!(k >= 3, "clique gadgets need k >= 3");
    assert_eq!(s.len(), c.len(), "one missing edge per gadget");
    let n = g.num_nodes();
    let mut adj: Vec<Vec<(NodeId, usize)>> = (0..n)
        .map(|v| (0..g.degree(v)).map(|p| g.neighbor_via(v, p)).collect())
        .collect();
    let mut labels: Vec<u64> = (0..n).map(|v| g.label(v)).collect();
    let max_label = labels.iter().copied().max().unwrap_or(0);

    let mut seen = std::collections::BTreeSet::new();
    for (i, (e, &(ai, bi))) in s.iter().zip(c.iter()).enumerate() {
        assert!(
            g.edge_between(e.u, e.v) == Some(*e),
            "edge {e:?} not present in base graph"
        );
        assert!(seen.insert((e.u, e.v)), "edge {e:?} replaced twice");
        assert!(ai < bi && bi < k, "missing edge ({ai},{bi}) out of range");

        let base = n + i * k;
        // Clique with rotational labeling: port p at local a -> local (a+p+1) mod k.
        let mut clique: Vec<Vec<(NodeId, usize)>> = Vec::with_capacity(k);
        for a in 0..k {
            let ports = (0..k - 1)
                .map(|p| {
                    let bn = (a + p + 1) % k;
                    let q = (a + k - bn - 1) % k;
                    (base + bn, q)
                })
                .collect();
            clique.push(ports);
        }
        // Free the ports of f_i = {ai, bi}.
        let p_ai = (bi + k - ai - 1) % k; // port at ai toward bi
        let p_bi = (ai + k - bi - 1) % k; // port at bi toward ai

        // Orient e_i by label.
        let (u, pu, v, pv) = if g.label(e.u) < g.label(e.v) {
            (e.u, e.port_u, e.v, e.port_v)
        } else {
            (e.v, e.port_v, e.u, e.port_u)
        };
        // Splice: u—a_i and v—b_i.
        adj[u][pu] = (base + ai, p_ai);
        adj[v][pv] = (base + bi, p_bi);
        clique[ai][p_ai] = (u, pu);
        clique[bi][p_bi] = (v, pv);

        adj.extend(clique);
        for a in 0..k {
            labels.push(max_label + 1 + (i * k + a) as u64);
        }
    }
    PortGraph::from_adjacency_labeled(adj, labels).expect("gadget splice preserves invariants")
}

/// Convenience wrapper: `G_{n,S}` on a random `S` of `m` edges of `K*_n`.
///
/// Returns the graph together with the chosen `S` (whose order defines the
/// hidden-node labels).
///
/// # Panics
///
/// Panics if `m` exceeds `n(n−1)/2`.
pub fn random_subdivided_complete<R: Rng>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> (PortGraph, Vec<EdgeRef>) {
    let base = crate::families::complete_rotational(n);
    let s = random_distinct_edges(&base, m, rng);
    (subdivide_edges(&base, &s), s)
}

/// Convenience wrapper: `G_{n,S,C}` on random `S` (`n/k` edges) and random
/// `C`, on base `K*_n`.
///
/// # Panics
///
/// Panics if `k < 3` or `n/k` exceeds the number of edges of `K*_n`.
pub fn random_clique_gadget<R: Rng>(
    n: usize,
    k: usize,
    rng: &mut R,
) -> (PortGraph, Vec<EdgeRef>, MissingEdges) {
    let base = crate::families::complete_rotational(n);
    let m = n / k;
    let s = random_distinct_edges(&base, m, rng);
    let c = random_missing_edges(m, k, rng);
    (clique_gadget_graph(&base, k, &s, &c), s, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::complete_rotational;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn subdivide_one_edge_of_triangle() {
        let g = complete_rotational(3);
        let e = g.edge_between(0, 1).unwrap();
        let h = subdivide_edges(&g, &[e]);
        h.validate().unwrap();
        assert_eq!(h.num_nodes(), 4);
        assert_eq!(h.num_edges(), 4);
        assert!(!h.has_edge(0, 1));
        assert!(h.has_edge(0, 3));
        assert!(h.has_edge(1, 3));
        assert_eq!(h.degree(3), 2);
        // Ports at the old endpoints unchanged.
        assert_eq!(h.port_toward(0, 3), Some(e.port_u));
        assert_eq!(h.port_toward(1, 3), Some(e.port_v));
        // Port 0 at the hidden node goes to the smaller-labeled endpoint.
        assert_eq!(h.neighbor_via(3, 0).0, 0);
        assert_eq!(h.neighbor_via(3, 1).0, 1);
    }

    #[test]
    fn subdivided_complete_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 8;
        let (h, s) = random_subdivided_complete(n, n, &mut rng);
        h.validate().unwrap();
        assert_eq!(h.num_nodes(), 2 * n);
        assert_eq!(h.num_edges(), n * (n - 1) / 2 + n);
        assert!(h.is_connected());
        assert_eq!(s.len(), n);
        // Hidden nodes all have degree 2 and fresh labels.
        for i in 0..n {
            assert_eq!(h.degree(n + i), 2);
            assert_eq!(h.label(n + i), (n + i) as u64);
        }
    }

    #[test]
    fn subdivision_is_indistinguishable_from_outside() {
        // The ports at original nodes are identical to the base complete
        // graph: only traversal reveals hidden nodes.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 6;
        let base = complete_rotational(n);
        let (h, _) = random_subdivided_complete(n, 3, &mut rng);
        for v in 0..n {
            assert_eq!(h.degree(v), base.degree(v), "degree changed at {v}");
        }
    }

    #[test]
    #[should_panic(expected = "subdivided twice")]
    fn subdivide_rejects_duplicates() {
        let g = complete_rotational(3);
        let e = g.edge_between(0, 1).unwrap();
        subdivide_edges(&g, &[e, e]);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn subdivide_rejects_foreign_edge() {
        let g = complete_rotational(4);
        let fake = EdgeRef {
            u: 0,
            port_u: 0,
            v: 1,
            port_v: 5,
        };
        subdivide_edges(&g, &[fake]);
    }

    #[test]
    fn clique_gadget_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let (n, k) = (12, 4);
        let (h, s, c) = random_clique_gadget(n, k, &mut rng);
        h.validate().unwrap();
        assert!(h.is_connected());
        assert_eq!(h.num_nodes(), n + (n / k) * k); // 2n when k | n
        assert_eq!(s.len(), n / k);
        assert_eq!(c.len(), n / k);
        // All clique nodes have degree k-1 (paper's observation).
        for v in n..h.num_nodes() {
            assert_eq!(h.degree(v), k - 1, "clique node {v}");
        }
        // Replaced base edges are gone.
        for e in &s {
            assert!(!h.has_edge(e.u, e.v));
        }
    }

    #[test]
    fn clique_gadget_missing_edge_absent() {
        let g = complete_rotational(8);
        let e = g.edge_between(2, 5).unwrap();
        let k = 5;
        let c = vec![(1usize, 3usize)];
        let h = clique_gadget_graph(&g, k, &[e], &c);
        h.validate().unwrap();
        let base = 8;
        // f = {1,3} locally: absent.
        assert!(!h.has_edge(base + 1, base + 3));
        // All other internal pairs present.
        for a in 0..k {
            for b in a + 1..k {
                if (a, b) != (1, 3) {
                    assert!(h.has_edge(base + a, base + b), "missing ({a},{b})");
                }
            }
        }
        // Splice: smaller-labeled endpoint (2) to a_i=1, larger (5) to b_i=3.
        assert!(h.has_edge(2, base + 1));
        assert!(h.has_edge(5, base + 3));
        // Outside ports preserved.
        assert_eq!(h.port_toward(2, base + 1), Some(e.port_u));
        assert_eq!(h.port_toward(5, base + 3), Some(e.port_v));
    }

    #[test]
    fn clique_gadget_degrees_uniform_after_splice() {
        // a_i and b_i lose one internal edge and gain one external: still k-1.
        let mut rng = StdRng::seed_from_u64(9);
        let (h, _, _) = random_clique_gadget(16, 4, &mut rng);
        for v in 16..h.num_nodes() {
            assert_eq!(h.degree(v), 3);
        }
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn clique_gadget_rejects_tiny_k() {
        let g = complete_rotational(4);
        let e = g.edge_between(0, 1).unwrap();
        clique_gadget_graph(&g, 2, &[e], &vec![(0, 1)]);
    }

    #[test]
    fn random_distinct_edges_are_distinct() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = complete_rotational(7);
        let s = random_distinct_edges(&g, 10, &mut rng);
        let mut set = std::collections::BTreeSet::new();
        for e in &s {
            assert!(set.insert((e.u, e.v)));
        }
    }

    #[test]
    fn random_missing_edges_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = random_missing_edges(50, 6, &mut rng);
        for &(a, b) in &c {
            assert!(a < b && b < 6);
        }
    }
}
