//! Incremental construction of [`PortGraph`]s.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::portgraph::{GraphError, NodeId, Port, PortGraph};

/// Builds a [`PortGraph`] edge by edge.
///
/// Ports are assigned on a first-come basis: the `k`-th edge added at a node
/// gets port `k` there. Use [`shuffle_ports`](PortGraphBuilder::shuffle_ports)
/// to randomize the assignment afterwards (port numberings are adversarial
/// in the model, so experiments sweep over them), or
/// [`add_edge_with_ports`](PortGraphBuilder::add_edge_with_ports) for full
/// control.
///
/// # Examples
///
/// ```
/// use oraclesize_graph::PortGraphBuilder;
///
/// let mut b = PortGraphBuilder::new(4);
/// for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
///     b.add_edge(u, v).unwrap();
/// }
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct PortGraphBuilder {
    // lint:allow(D005): incremental construction needs per-node growable
    // port slots with gaps; build() flattens into the CSR PortGraph.
    adj: Vec<Vec<Option<(NodeId, Port)>>>,
    labels: Option<Vec<u64>>,
}

impl PortGraphBuilder {
    /// A builder for a graph on `n` isolated nodes with default labels
    /// `0..n`.
    pub fn new(n: usize) -> Self {
        PortGraphBuilder {
            adj: vec![Vec::new(); n],
            labels: None,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Current degree of `v` (number of port slots, filled or reserved).
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Adds the edge `{u,v}`, assigning the next free port at each endpoint.
    ///
    /// # Errors
    ///
    /// Rejects self-loops and parallel edges.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let pu = self.adj[u].len();
        let pv = if u == v { pu + 1 } else { self.adj[v].len() };
        self.add_edge_with_ports(u, pu, v, pv)
    }

    /// Adds the edge `{u,v}` at explicit ports, growing the port arrays as
    /// needed. Intermediate gaps must be filled before
    /// [`build`](PortGraphBuilder::build) is called.
    ///
    /// # Errors
    ///
    /// Rejects self-loops, parallel edges, and occupied port slots (reported
    /// as [`GraphError::AsymmetricPortMap`] since the slot cannot be made
    /// consistent).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge_with_ports(
        &mut self,
        u: NodeId,
        pu: Port,
        v: NodeId,
        pv: Port,
    ) -> Result<(), GraphError> {
        assert!(u < self.adj.len(), "node {u} out of range");
        assert!(v < self.adj.len(), "node {v} out of range");
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.adj[u].iter().flatten().any(|&(w, _)| w == v) {
            return Err(GraphError::ParallelEdge { u, v });
        }
        if self.adj[u].len() <= pu {
            self.adj[u].resize(pu + 1, None);
        }
        if self.adj[v].len() <= pv {
            self.adj[v].resize(pv + 1, None);
        }
        if self.adj[u][pu].is_some() {
            return Err(GraphError::AsymmetricPortMap { node: u, port: pu });
        }
        if self.adj[v][pv].is_some() {
            return Err(GraphError::AsymmetricPortMap { node: v, port: pv });
        }
        self.adj[u][pu] = Some((v, pv));
        self.adj[v][pv] = Some((u, pu));
        Ok(())
    }

    /// Overrides the default labels `0..n`.
    pub fn labels(&mut self, labels: Vec<u64>) -> &mut Self {
        self.labels = Some(labels);
        self
    }

    /// Randomly permutes the port numbering at every node, preserving the
    /// edge set. Port numberings carry information in this model, so
    /// experiments randomize them to avoid accidentally benign numberings.
    pub fn shuffle_ports<R: Rng>(&mut self, rng: &mut R) -> &mut Self {
        let n = self.adj.len();
        for v in 0..n {
            let deg = self.adj[v].len();
            let mut perm: Vec<Port> = (0..deg).collect();
            perm.shuffle(rng);
            // perm[old_port] = new_port at v.
            let mut new_ports: Vec<Option<(NodeId, Port)>> = vec![None; deg];
            for (old, &new) in perm.iter().enumerate() {
                new_ports[new] = self.adj[v][old];
            }
            self.adj[v] = new_ports;
            // Fix the back-references of neighbors.
            let slots: Vec<(Port, NodeId, Port)> = self.adj[v]
                .iter()
                .enumerate()
                .filter_map(|(new_p, slot)| slot.map(|(u, q)| (new_p, u, q)))
                .collect();
            for (new_p, u, q) in slots {
                // Neighbor u's slot q currently points to (v, old); update.
                let (w, _) = self.adj[u][q].expect("edge slots are paired");
                debug_assert_eq!(w, v);
                self.adj[u][q] = Some((v, new_p));
            }
        }
        self
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::OutOfRange`] if any port slot was left
    /// unfilled (possible after
    /// [`add_edge_with_ports`](PortGraphBuilder::add_edge_with_ports) with
    /// gaps), or any invariant violation found by [`PortGraph::validate`].
    pub fn build(self) -> Result<PortGraph, GraphError> {
        let n = self.adj.len();
        let total: usize = self.adj.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(total);
        let mut back_ports = Vec::with_capacity(total);
        offsets.push(0);
        for (v, ports) in self.adj.into_iter().enumerate() {
            for (p, slot) in ports.into_iter().enumerate() {
                match slot {
                    Some((u, q)) => {
                        targets.push(u);
                        back_ports.push(q);
                    }
                    None => return Err(GraphError::OutOfRange { node: v, port: p }),
                }
            }
            offsets.push(targets.len());
        }
        let labels = self.labels.unwrap_or_else(|| (0..n as u64).collect());
        PortGraph::from_csr(offsets, targets, back_ports, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn auto_ports_are_dense() {
        let mut b = PortGraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbor_via(0, 0).0, 1);
        assert_eq!(g.neighbor_via(0, 1).0, 2);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = PortGraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn rejects_parallel_edge() {
        let mut b = PortGraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        assert_eq!(
            b.add_edge(1, 0),
            Err(GraphError::ParallelEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn explicit_ports_respected() {
        let mut b = PortGraphBuilder::new(4);
        b.add_edge_with_ports(0, 2, 1, 0).unwrap();
        b.add_edge_with_ports(0, 0, 2, 0).unwrap();
        b.add_edge_with_ports(0, 1, 1, 1).unwrap_err(); // parallel with first
        b.add_edge_with_ports(0, 1, 3, 0).unwrap(); // fills the gap at port 1
        b.add_edge_with_ports(1, 1, 2, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.neighbor_via(0, 2), (1, 0));
        assert_eq!(g.neighbor_via(0, 0), (2, 0));
        assert_eq!(g.neighbor_via(0, 1), (3, 0));
    }

    #[test]
    fn gap_in_ports_fails_build() {
        let mut b = PortGraphBuilder::new(2);
        b.add_edge_with_ports(0, 1, 1, 0).unwrap(); // port 0 at node 0 left empty
        assert!(matches!(
            b.build(),
            Err(GraphError::OutOfRange { node: 0, port: 0 })
        ));
    }

    #[test]
    fn occupied_slot_rejected() {
        let mut b = PortGraphBuilder::new(3);
        b.add_edge_with_ports(0, 0, 1, 0).unwrap();
        assert!(b.add_edge_with_ports(0, 0, 2, 0).is_err());
    }

    #[test]
    fn shuffle_ports_preserves_edge_set_and_validity() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut b = PortGraphBuilder::new(6);
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
        ];
        for (u, v) in edges {
            b.add_edge(u, v).unwrap();
        }
        b.shuffle_ports(&mut rng);
        let g = b.build().unwrap();
        g.validate().unwrap();
        for (u, v) in edges {
            assert!(g.has_edge(u, v), "lost edge {{{u},{v}}}");
        }
        assert_eq!(g.num_edges(), edges.len());
    }

    #[test]
    fn custom_labels_applied() {
        let mut b = PortGraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        b.labels(vec![100, 200]);
        let g = b.build().unwrap();
        assert_eq!(g.label(0), 100);
        assert_eq!(g.label(1), 200);
    }
}
