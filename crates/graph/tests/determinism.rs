//! Regression tests for D001: spanning-tree construction must not depend
//! on hash-map iteration order.
//!
//! `light_tree` groups union-find components with a map keyed by
//! representative and picks a minimum-weight outgoing edge per small tree.
//! With the original `HashMap` grouping, ties between equal-weight edges
//! were broken by whatever order the map yielded — different from process
//! to process. The golden parent map below pins the `BTreeMap` order; a
//! re-randomized grouping would fail it with overwhelming probability.

use oraclesize_graph::families::complete_rotational;
use oraclesize_graph::spanning::{light_tree, RootedTree};
use oraclesize_graph::NodeId;

fn parents(t: &RootedTree) -> Vec<Option<NodeId>> {
    (0..t.num_nodes())
        .map(|v| t.parent(v).map(|(p, _, _)| p))
        .collect()
}

#[test]
fn light_tree_identical_across_runs() {
    // K*_9: every edge weight is a port minimum, so ties abound — the
    // worst case for order-dependent grouping.
    let g = complete_rotational(9);
    let a = light_tree(&g, 0);
    let b = light_tree(&g, 0);
    assert_eq!(parents(&a), parents(&b));
}

#[test]
fn light_tree_parent_map_pinned() {
    let g = complete_rotational(9);
    let t = light_tree(&g, 0);
    t.validate(&g).expect("light tree spans");
    // GOLDEN: computed once from the BTreeMap grouping; any change to
    // tie-breaking (including a regression to unordered maps) shifts it.
    let golden: Vec<Option<NodeId>> = vec![
        None,
        Some(0),
        Some(1),
        Some(2),
        Some(3),
        Some(4),
        Some(5),
        Some(6),
        Some(7),
    ];
    assert_eq!(parents(&t), golden);
}
