//! Property-based tests for the port-graph substrate.

use oraclesize_graph::families::{self, Family};
use oraclesize_graph::gadgets;
use oraclesize_graph::spanning::{self, TreeAlgorithm};
use oraclesize_graph::PortGraphBuilder;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_family() -> impl Strategy<Value = Family> {
    proptest::sample::select(Family::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn families_validate_and_connect(fam in arb_family(), n in 4usize..80, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.is_connected());
    }

    #[test]
    fn port_symmetry_everywhere(fam in arb_family(), n in 4usize..60, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        for v in 0..g.num_nodes() {
            for p in 0..g.degree(v) {
                let (u, q) = g.neighbor_via(v, p);
                prop_assert_eq!(g.neighbor_via(u, q), (v, p));
            }
        }
    }

    #[test]
    fn spanning_trees_valid_on_random_graphs(
        n in 2usize..50,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
        alg in proptest::sample::select(TreeAlgorithm::ALL.to_vec()),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, p, &mut rng);
        let root = seed as usize % n;
        let t = alg.build(&g, root, &mut rng);
        prop_assert!(t.validate(&g).is_ok(), "{}", alg.name());
        prop_assert_eq!(t.root(), root);
        prop_assert_eq!(t.edges(&g).count(), n - 1);
    }

    #[test]
    fn light_tree_contribution_under_4n(
        n in 2usize..120,
        p in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, p, &mut rng);
        let t = spanning::light_tree(&g, 0);
        prop_assert!(t.contribution(&g) <= 4 * n as u64);
    }

    #[test]
    fn subdivision_hides_nodes_correctly(n in 4usize..24, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = 1 + seed as usize % n;
        let (h, s) = gadgets::random_subdivided_complete(n, m, &mut rng);
        prop_assert!(h.validate().is_ok());
        prop_assert!(h.is_connected());
        prop_assert_eq!(h.num_nodes(), n + m);
        // Each hidden node sits between the endpoints of its edge, with
        // port 0 toward the smaller-labeled endpoint.
        for (i, e) in s.iter().enumerate() {
            let w = n + i;
            prop_assert_eq!(h.degree(w), 2);
            prop_assert_eq!(h.neighbor_via(w, 0).0, e.u);
            prop_assert_eq!(h.neighbor_via(w, 1).0, e.v);
            prop_assert!(!h.has_edge(e.u, e.v));
        }
    }

    #[test]
    fn clique_gadgets_valid(n in 6usize..30, k in 3usize..6, seed in any::<u64>()) {
        prop_assume!(n / k >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let (h, s, c) = gadgets::random_clique_gadget(n, k, &mut rng);
        prop_assert!(h.validate().is_ok());
        prop_assert!(h.is_connected());
        prop_assert_eq!(s.len(), n / k);
        prop_assert_eq!(c.len(), n / k);
        for v in n..h.num_nodes() {
            prop_assert_eq!(h.degree(v), k - 1);
        }
    }

    #[test]
    fn shuffle_ports_is_isomorphism_on_edges(n in 2usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, 0.3, &mut rng);
        let mut b = PortGraphBuilder::new(n);
        for e in g.edges() {
            b.add_edge(e.u, e.v).unwrap();
        }
        b.shuffle_ports(&mut rng);
        let h = b.build().unwrap();
        prop_assert!(h.validate().is_ok());
        prop_assert_eq!(h.num_edges(), g.num_edges());
        for e in g.edges() {
            prop_assert!(h.has_edge(e.u, e.v));
        }
    }

    #[test]
    fn crash_sets_preserve_connectivity(
        fam in arb_family(),
        n in 4usize..48,
        seed in any::<u64>(),
        budget in 0usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        let nodes = g.num_nodes();
        let protect = [seed as usize % nodes];
        let set = oraclesize_graph::connectivity_preserving_crash_set(&g, &protect, budget, seed);
        prop_assert!(set.len() <= budget);
        prop_assert!(!set.contains(&protect[0]));
        // Deterministic for the same inputs.
        let again = oraclesize_graph::connectivity_preserving_crash_set(&g, &protect, budget, seed);
        prop_assert_eq!(&set, &again);
        // Survivors form one connected component: BFS from the protected
        // node over non-crashed nodes must reach every survivor.
        let mut crashed = vec![false; nodes];
        for &v in &set {
            crashed[v] = true;
        }
        let mut seen = vec![false; nodes];
        seen[protect[0]] = true;
        let mut queue = std::collections::VecDeque::from([protect[0]]);
        let mut reached = 1;
        while let Some(v) = queue.pop_front() {
            for u in g.neighbors(v) {
                if !crashed[u] && !seen[u] {
                    seen[u] = true;
                    reached += 1;
                    queue.push_back(u);
                }
            }
        }
        prop_assert_eq!(reached, nodes - set.len());
    }

    #[test]
    fn bfs_distance_triangle_inequality(n in 2usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, 0.2, &mut rng);
        let d0 = oraclesize_graph::traverse::bfs_distances(&g, 0);
        for e in g.edges() {
            let (du, dv) = (d0[e.u].unwrap() as isize, d0[e.v].unwrap() as isize);
            prop_assert!((du - dv).abs() <= 1, "edge endpoints differ by >1");
        }
    }
}
