//! Property-based tests for the port-graph substrate.

use oraclesize_graph::families::{self, Family};
use oraclesize_graph::gadgets;
use oraclesize_graph::spanning::{self, TreeAlgorithm};
use oraclesize_graph::{GraphError, PortGraph, PortGraphBuilder};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn arb_family() -> impl Strategy<Value = Family> {
    proptest::sample::select(Family::ALL.to_vec())
}

/// A random *valid* nested port map `adj[v][p] = (u, q)` — the reference
/// semantics the flat-CSR [`PortGraph`] must be observationally equivalent
/// to. Ports are insertion order over a shuffled edge list, so port
/// assignments are arbitrary rather than sorted.
fn arb_nested_adjacency(n: usize, density: f64, seed: u64) -> Vec<Vec<(usize, usize)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    let mut pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
        .collect();
    pairs.shuffle(&mut rng);
    for (u, v) in pairs {
        if rng.gen_bool(density) {
            let pu = adj[u].len();
            let pv = adj[v].len();
            adj[u].push((v, pv));
            adj[v].push((u, pu));
        }
    }
    adj
}

/// Nested-semantics reference validator, scanning in the same
/// node-major/port-minor order the CSR `validate` documents: the CSR
/// implementation must report the *same first violation*.
fn reference_validate(adj: &[Vec<(usize, usize)>], labels: &[u64]) -> Result<(), GraphError> {
    let n = adj.len();
    for (v, ports) in adj.iter().enumerate() {
        let mut seen: Vec<usize> = Vec::new();
        for (p, &(u, q)) in ports.iter().enumerate() {
            if u >= n {
                return Err(GraphError::OutOfRange { node: v, port: p });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: v });
            }
            if seen.contains(&u) {
                return Err(GraphError::ParallelEdge { u: v, v: u });
            }
            seen.push(u);
            if q >= adj[u].len() {
                return Err(GraphError::OutOfRange { node: v, port: p });
            }
            if adj[u][q] != (v, p) {
                return Err(GraphError::AsymmetricPortMap { node: v, port: p });
            }
        }
    }
    let mut sorted = labels.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(GraphError::DuplicateLabel { label: w[0] });
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn families_validate_and_connect(fam in arb_family(), n in 4usize..80, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.is_connected());
    }

    #[test]
    fn port_symmetry_everywhere(fam in arb_family(), n in 4usize..60, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        for v in 0..g.num_nodes() {
            for p in 0..g.degree(v) {
                let (u, q) = g.neighbor_via(v, p);
                prop_assert_eq!(g.neighbor_via(u, q), (v, p));
            }
        }
    }

    #[test]
    fn spanning_trees_valid_on_random_graphs(
        n in 2usize..50,
        p in 0.0f64..1.0,
        seed in any::<u64>(),
        alg in proptest::sample::select(TreeAlgorithm::ALL.to_vec()),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, p, &mut rng);
        let root = seed as usize % n;
        let t = alg.build(&g, root, &mut rng);
        prop_assert!(t.validate(&g).is_ok(), "{}", alg.name());
        prop_assert_eq!(t.root(), root);
        prop_assert_eq!(t.edges(&g).count(), n - 1);
    }

    #[test]
    fn light_tree_contribution_under_4n(
        n in 2usize..120,
        p in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, p, &mut rng);
        let t = spanning::light_tree(&g, 0);
        prop_assert!(t.contribution(&g) <= 4 * n as u64);
    }

    #[test]
    fn subdivision_hides_nodes_correctly(n in 4usize..24, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = 1 + seed as usize % n;
        let (h, s) = gadgets::random_subdivided_complete(n, m, &mut rng);
        prop_assert!(h.validate().is_ok());
        prop_assert!(h.is_connected());
        prop_assert_eq!(h.num_nodes(), n + m);
        // Each hidden node sits between the endpoints of its edge, with
        // port 0 toward the smaller-labeled endpoint.
        for (i, e) in s.iter().enumerate() {
            let w = n + i;
            prop_assert_eq!(h.degree(w), 2);
            prop_assert_eq!(h.neighbor_via(w, 0).0, e.u);
            prop_assert_eq!(h.neighbor_via(w, 1).0, e.v);
            prop_assert!(!h.has_edge(e.u, e.v));
        }
    }

    #[test]
    fn clique_gadgets_valid(n in 6usize..30, k in 3usize..6, seed in any::<u64>()) {
        prop_assume!(n / k >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let (h, s, c) = gadgets::random_clique_gadget(n, k, &mut rng);
        prop_assert!(h.validate().is_ok());
        prop_assert!(h.is_connected());
        prop_assert_eq!(s.len(), n / k);
        prop_assert_eq!(c.len(), n / k);
        for v in n..h.num_nodes() {
            prop_assert_eq!(h.degree(v), k - 1);
        }
    }

    #[test]
    fn shuffle_ports_is_isomorphism_on_edges(n in 2usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, 0.3, &mut rng);
        let mut b = PortGraphBuilder::new(n);
        for e in g.edges() {
            b.add_edge(e.u, e.v).unwrap();
        }
        b.shuffle_ports(&mut rng);
        let h = b.build().unwrap();
        prop_assert!(h.validate().is_ok());
        prop_assert_eq!(h.num_edges(), g.num_edges());
        for e in g.edges() {
            prop_assert!(h.has_edge(e.u, e.v));
        }
    }

    #[test]
    fn crash_sets_preserve_connectivity(
        fam in arb_family(),
        n in 4usize..48,
        seed in any::<u64>(),
        budget in 0usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = fam.build(n, &mut rng);
        let nodes = g.num_nodes();
        let protect = [seed as usize % nodes];
        let set = oraclesize_graph::connectivity_preserving_crash_set(&g, &protect, budget, seed);
        prop_assert!(set.len() <= budget);
        prop_assert!(!set.contains(&protect[0]));
        // Deterministic for the same inputs.
        let again = oraclesize_graph::connectivity_preserving_crash_set(&g, &protect, budget, seed);
        prop_assert_eq!(&set, &again);
        // Survivors form one connected component: BFS from the protected
        // node over non-crashed nodes must reach every survivor.
        let mut crashed = vec![false; nodes];
        for &v in &set {
            crashed[v] = true;
        }
        let mut seen = vec![false; nodes];
        seen[protect[0]] = true;
        let mut queue = std::collections::VecDeque::from([protect[0]]);
        let mut reached = 1;
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if !crashed[u] && !seen[u] {
                    seen[u] = true;
                    reached += 1;
                    queue.push_back(u);
                }
            }
        }
        prop_assert_eq!(reached, nodes - set.len());
    }

    #[test]
    fn csr_graph_observes_like_nested_adjacency(
        n in 1usize..40,
        density in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let adj = arb_nested_adjacency(n, density, seed);
        let g = PortGraph::from_adjacency(adj.clone()).expect("valid by construction");

        prop_assert_eq!(g.num_nodes(), adj.len());
        prop_assert_eq!(
            g.num_edges(),
            adj.iter().map(Vec::len).sum::<usize>() / 2
        );
        for (v, ports) in adj.iter().enumerate() {
            // Default labels are node ids, as the nested constructor did.
            prop_assert_eq!(g.label(v), v as u64);
            prop_assert_eq!(g.degree(v), ports.len());
            // Port iteration order is exactly the nested order…
            let neighbors: Vec<usize> = ports.iter().map(|&(u, _)| u).collect();
            let arrivals: Vec<usize> = ports.iter().map(|&(_, q)| q).collect();
            prop_assert_eq!(g.neighbors(v), &neighbors[..]);
            prop_assert_eq!(g.arrival_ports(v), &arrivals[..]);
            // …and so is single-port lookup.
            for (p, &(u, q)) in ports.iter().enumerate() {
                prop_assert_eq!(g.neighbor_via(v, p), (u, q));
            }
            for u in 0..n {
                prop_assert_eq!(
                    g.port_toward(v, u),
                    ports.iter().position(|&(w, _)| w == u)
                );
                prop_assert_eq!(g.has_edge(v, u), ports.iter().any(|&(w, _)| w == u));
            }
        }
        // Canonical edge iteration: u-major, port-minor, u < v — identical
        // to enumerating the nested structure the same way.
        let reference: Vec<(usize, usize, usize, usize)> = adj
            .iter()
            .enumerate()
            .flat_map(|(u, ports)| {
                ports
                    .iter()
                    .enumerate()
                    .filter(move |&(_, &(v, _))| u < v)
                    .map(move |(pu, &(v, pv))| (u, pu, v, pv))
            })
            .collect();
        let csr: Vec<(usize, usize, usize, usize)> = g
            .edges()
            .map(|e| (e.u, e.port_u, e.v, e.port_v))
            .collect();
        prop_assert_eq!(csr, reference);
    }

    #[test]
    fn csr_labeled_constructor_matches_nested_labels(
        n in 1usize..32,
        seed in any::<u64>(),
    ) {
        let adj = arb_nested_adjacency(n, 0.4, seed);
        let labels: Vec<u64> = (0..n as u64).map(|v| v * 7 + 3).collect();
        let g = PortGraph::from_adjacency_labeled(adj, labels.clone()).expect("valid");
        for (v, &l) in labels.iter().enumerate() {
            prop_assert_eq!(g.label(v), l);
            prop_assert_eq!(g.node_by_label(l), Some(v));
        }
        prop_assert_eq!(g.node_by_label(1), None);
    }

    #[test]
    fn csr_reports_the_same_first_violation_as_nested_semantics(
        n in 2usize..24,
        seed in any::<u64>(),
        kind in 0usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let mut adj = arb_nested_adjacency(n, 0.5, seed);
        let mut labels: Vec<u64> = (0..n as u64).collect();
        prop_assume!(adj.iter().any(|p| !p.is_empty()));
        let v = {
            let mut v = rng.gen_range(0..n);
            while adj[v].is_empty() {
                v = (v + 1) % n;
            }
            v
        };
        let p = rng.gen_range(0..adj[v].len());
        // One corruption of a random kind; whatever *first* violation the
        // scan order implies (possibly at the stale partner entry), the CSR
        // and nested-reference validators must agree on it exactly.
        match kind {
            0 => adj[v][p].0 = v,                          // self-loop
            1 => adj[v][p].0 = n + rng.gen_range(0..4usize), // target out of range
            2 => adj[v][p].1 += 17,                        // back-port out of range
            3 => {
                // Redirect to another neighbor slot: breaks symmetry, and
                // creates a parallel edge whenever deg(v) ≥ 2.
                let (u, _) = adj[v][(p + 1) % adj[v].len()];
                prop_assume!(u != adj[v][p].0);
                adj[v][p].0 = u;
            }
            _ => labels[v] = labels[(v + 1) % n],          // duplicate label
        }
        let reference = reference_validate(&adj, &labels);
        prop_assert!(reference.is_err());
        let csr = PortGraph::from_adjacency_labeled(adj, labels).map(|_| ());
        prop_assert_eq!(csr, reference);
    }

    #[test]
    fn bfs_distance_triangle_inequality(n in 2usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::random_connected(n, 0.2, &mut rng);
        let d0 = oraclesize_graph::traverse::bfs_distances(&g, 0);
        for e in g.edges() {
            let (du, dv) = (d0[e.u].unwrap() as isize, d0[e.v].unwrap() as isize);
            prop_assert!((du - dv).abs() <= 1, "edge endpoints differ by >1");
        }
    }
}
