//! The sweep service: distributed execution of [`SweepSpec`] jobs with
//! byte-identical artifacts.
//!
//! A sweep described by the runtime's canonical [`SweepSpec`] can run
//! three ways — in process ([`run_local`]), through the bench grids, or
//! distributed across this crate's server and workers — and all three
//! produce the **same artifact bytes**. The distribution layer:
//!
//! * [`frame`] — the length-prefixed, digest-checked binary frame every
//!   message travels in (dependency-free, over `std::net::TcpStream`),
//! * [`proto`] — the typed messages: submit/poll on the client side,
//!   want/shard/result on the worker side,
//! * [`server`] — admits jobs, shards grids by the scheduler's cost
//!   hints, leases shards to workers, requeues them when a worker dies,
//!   and merges results in cell order through the runtime's
//!   `OrderedCommitter`,
//! * [`worker`] — runs shards through
//!   [`run_supervised_shard`](oraclesize_runtime::run_supervised_shard)
//!   with per-shard segment journals, so a replacement worker resumes a
//!   dead one's checkpoints,
//! * [`client`] — submits a spec and polls until the merged artifact
//!   comes back.
//!
//! The byte-identity contract is pinned by this crate's integration
//! tests (local vs 1 worker vs 3 workers vs kill-and-resume) and by the
//! CI `service-smoke` job, which diffs a distributed `BENCH_T10.json`
//! against the committed artifact.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod worker;

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use oraclesize_bench::grid::CellGrid;
use oraclesize_runtime::spec::{artifact_json, grid_json};
use oraclesize_runtime::{
    run_supervised_batch, KnobSpec, Pool, RunReport, SuperviseConfig, SweepOptions, SweepSpec,
};

pub use client::submit;
pub use server::{Server, ServerConfig};
pub use worker::{run_worker, WorkerConfig, WorkerOutcome};

/// Renders a sweep's merged artifact file contents: the committed
/// `BENCH_<NAME>.json` envelope around the cell-ordered grid fragment,
/// plus the trailing newline the files on disk carry. Every execution
/// path — local, bench grid, distributed — funnels through this (or the
/// identical `emit_json` path in the bench crate), which is what the
/// byte-identity tests pin.
pub fn render_artifact(spec: &SweepSpec, reports: &[RunReport]) -> String {
    let labels: Vec<String> = spec.cells.iter().map(|c| c.label.clone()).collect();
    let body = grid_json(&labels, reports);
    format!(
        "{}\n",
        artifact_json(&spec.name, spec.master_seed, body).render()
    )
}

/// The supervision policy a spec's knobs describe.
pub(crate) fn supervise_config(knobs: &KnobSpec) -> SuperviseConfig {
    SuperviseConfig {
        max_retries: knobs.max_retries as u32,
        cell_timeout: knobs.cell_timeout,
        ..Default::default()
    }
}

/// Runs a spec start-to-finish in this process — the reference the
/// distributed path must match byte for byte.
///
/// # Errors
///
/// Returns the grid lowering error for a spec this build cannot run.
pub fn run_local(spec: &SweepSpec, threads: usize) -> Result<String, String> {
    let grid = CellGrid::from_spec(spec)?;
    let opts = SweepOptions {
        supervise: supervise_config(&spec.knobs),
        journal: None,
        resume: false,
        seeds: Some(spec.cells.iter().map(|c| c.seed).collect()),
        chaos: Default::default(),
        chunk: spec.knobs.chunk.map(|c| c as usize),
        costs: Some(grid.costs().to_vec()),
    };
    let run = run_supervised_batch(&Pool::new(threads.max(1)), grid.requests(), &opts);
    Ok(render_artifact(spec, &run.reports()))
}

/// Connects to `addr`, retrying `tries` times with `pause_ms` sleeps —
/// workers and clients routinely start before the server has bound.
pub(crate) fn connect_with_retries(addr: &str, tries: u32, pause_ms: u64) -> io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..tries.max(1) {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        if attempt + 1 < tries {
            std::thread::sleep(Duration::from_millis(pause_ms.max(1)));
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("no connect attempts")))
}
