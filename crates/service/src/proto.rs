//! The sweep protocol: typed messages over [`crate::frame`] frames.
//!
//! Payloads are rendered with the runtime's deterministic [`Json`]
//! writer and parsed with its strict reader, so a malformed peer is
//! rejected at decode time with a named first error — the same policy
//! [`SweepSpec::parse`](oraclesize_runtime::SweepSpec::parse) applies to
//! submitted jobs.
//!
//! | kind | message | direction |
//! |------|--------------|---------------------|
//! | 1 | [`Message::Submit`] | client → server |
//! | 2 | [`Message::Accepted`] | server → client |
//! | 3 | [`Message::Poll`] | client → server |
//! | 4 | [`Message::Status`] | server → client |
//! | 5 | [`Message::Want`] | worker → server |
//! | 6 | [`Message::Shard`] | server → worker |
//! | 7 | [`Message::NoWork`] | server → worker |
//! | 8 | [`Message::Result`] | worker → server |
//! | 9 | [`Message::Ack`] | server → worker |
//! | 10 | [`Message::Error`] | server → anyone |
//!
//! Result records carry report bodies in the checkpoint journal's
//! `{"ok": …}` / `{"err": …}` encoding
//! ([`oraclesize_runtime::journal::report_json`]), which is lossless for
//! every untraced report — exactly the reports a service sweep produces.

use std::io::{self, Read, Write};

use oraclesize_runtime::Json;

use crate::frame::{read_frame, write_frame};

/// One record of a [`Message::Result`] batch: a sweep-wide cell index,
/// the seed the cell ran under, and its journal-encoded report body.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Sweep-wide cell index.
    pub cell: u64,
    /// The seed recorded for the cell (the spec's `cells[*].seed`).
    pub seed: u64,
    /// [`oraclesize_runtime::journal::report_json`] body.
    pub report: Json,
}

/// A protocol message. See the module table for kinds and directions.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Submit a sweep job: the spec's canonical JSON plus whether the
    /// server may prefill results from its own journal for this job.
    Submit {
        /// [`SweepSpec::to_json`](oraclesize_runtime::SweepSpec::to_json).
        spec: Json,
        /// Allow server-side journal resume for this job.
        resume: bool,
    },
    /// The job was admitted (or already known); `job` is the spec digest.
    Accepted {
        /// Job id — [`SweepSpec::digest`](oraclesize_runtime::SweepSpec::digest).
        job: u64,
        /// Total cells in the sweep.
        cells: u64,
    },
    /// Ask for a job's progress.
    Poll {
        /// Job id.
        job: u64,
    },
    /// Progress snapshot; `artifact` is present exactly when `state` is
    /// `"done"`.
    Status {
        /// Job id.
        job: u64,
        /// `"running"` or `"done"`.
        state: String,
        /// Cells merged so far.
        done: u64,
        /// Total cells.
        total: u64,
        /// The merged artifact file contents, byte-identical to a local
        /// run's `BENCH_<NAME>.json`.
        artifact: Option<String>,
    },
    /// A worker asking for a shard.
    Want {
        /// Worker name, for the server's log line.
        worker: String,
    },
    /// A shard lease: run cells `[lo, hi)` of job `job`'s `total`-cell
    /// grid. The spec travels with the first lease so workers need no
    /// side channel; they cache it per job afterwards.
    Shard {
        /// Job id.
        job: u64,
        /// Shard id within the job.
        shard: u64,
        /// First sweep-wide cell index of the shard.
        lo: u64,
        /// One past the last cell index.
        hi: u64,
        /// Total cells in the sweep.
        total: u64,
        /// The job's spec JSON.
        spec: Json,
    },
    /// No shard available right now; `done` means the server has
    /// finished its configured job count and the worker should exit.
    NoWork {
        /// `true`: shut down; `false`: poll again later.
        done: bool,
    },
    /// A completed shard's per-cell results.
    Result {
        /// Job id.
        job: u64,
        /// Shard id being returned.
        shard: u64,
        /// One record per cell of the shard, in cell order.
        records: Vec<CellRecord>,
    },
    /// The server merged a result batch.
    Ack {
        /// Job id.
        job: u64,
        /// Cells merged so far.
        done: u64,
        /// Total cells.
        total: u64,
    },
    /// A request was rejected; the text names the first error.
    Error {
        /// Human-readable reason.
        text: String,
    },
}

impl Message {
    /// This message's frame kind.
    pub fn kind(&self) -> u16 {
        match self {
            Message::Submit { .. } => 1,
            Message::Accepted { .. } => 2,
            Message::Poll { .. } => 3,
            Message::Status { .. } => 4,
            Message::Want { .. } => 5,
            Message::Shard { .. } => 6,
            Message::NoWork { .. } => 7,
            Message::Result { .. } => 8,
            Message::Ack { .. } => 9,
            Message::Error { .. } => 10,
        }
    }

    /// The JSON payload this message frames.
    pub fn to_json(&self) -> Json {
        match self {
            Message::Submit { spec, resume } => Json::obj()
                .field("spec", spec.clone())
                .field("resume", *resume),
            Message::Accepted { job, cells } => {
                Json::obj().field("job", *job).field("cells", *cells)
            }
            Message::Poll { job } => Json::obj().field("job", *job),
            Message::Status {
                job,
                state,
                done,
                total,
                artifact,
            } => {
                let mut j = Json::obj()
                    .field("job", *job)
                    .field("state", state.as_str())
                    .field("done", *done)
                    .field("total", *total);
                if let Some(a) = artifact {
                    j = j.field("artifact", a.as_str());
                }
                j
            }
            Message::Want { worker } => Json::obj().field("worker", worker.as_str()),
            Message::Shard {
                job,
                shard,
                lo,
                hi,
                total,
                spec,
            } => Json::obj()
                .field("job", *job)
                .field("shard", *shard)
                .field("lo", *lo)
                .field("hi", *hi)
                .field("total", *total)
                .field("spec", spec.clone()),
            Message::NoWork { done } => Json::obj().field("done", *done),
            Message::Result {
                job,
                shard,
                records,
            } => {
                let records: Vec<Json> = records
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .field("cell", r.cell)
                            .field("seed", r.seed)
                            .field("report", r.report.clone())
                    })
                    .collect();
                Json::obj()
                    .field("job", *job)
                    .field("shard", *shard)
                    .field("records", records)
            }
            Message::Ack { job, done, total } => Json::obj()
                .field("job", *job)
                .field("done", *done)
                .field("total", *total),
            Message::Error { text } => Json::obj().field("text", text.as_str()),
        }
    }

    /// Decodes a received frame.
    ///
    /// # Errors
    ///
    /// Returns a first-error message for an unknown kind, unparseable
    /// payload, or a missing/mis-typed field.
    pub fn decode(kind: u16, payload: &[u8]) -> Result<Message, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let j = oraclesize_runtime::json::parse(text)
            .ok_or_else(|| "payload is not canonical JSON".to_string())?;
        Ok(match kind {
            1 => Message::Submit {
                spec: req(&j, "spec")?.clone(),
                resume: req_bool(&j, "resume")?,
            },
            2 => Message::Accepted {
                job: req_u64(&j, "job")?,
                cells: req_u64(&j, "cells")?,
            },
            3 => Message::Poll {
                job: req_u64(&j, "job")?,
            },
            4 => Message::Status {
                job: req_u64(&j, "job")?,
                state: req_str(&j, "state")?,
                done: req_u64(&j, "done")?,
                total: req_u64(&j, "total")?,
                artifact: match j.get("artifact") {
                    Some(a) => Some(
                        a.as_str()
                            .ok_or_else(|| "status.artifact: expected a string".to_string())?
                            .to_string(),
                    ),
                    None => None,
                },
            },
            5 => Message::Want {
                worker: req_str(&j, "worker")?,
            },
            6 => Message::Shard {
                job: req_u64(&j, "job")?,
                shard: req_u64(&j, "shard")?,
                lo: req_u64(&j, "lo")?,
                hi: req_u64(&j, "hi")?,
                total: req_u64(&j, "total")?,
                spec: req(&j, "spec")?.clone(),
            },
            7 => Message::NoWork {
                done: req_bool(&j, "done")?,
            },
            8 => {
                let records = match req(&j, "records")? {
                    Json::Array(items) => items
                        .iter()
                        .enumerate()
                        .map(|(i, r)| {
                            Ok(CellRecord {
                                cell: req_u64(r, "cell")
                                    .map_err(|e| format!("records[{i}].{e}"))?,
                                seed: req_u64(r, "seed")
                                    .map_err(|e| format!("records[{i}].{e}"))?,
                                report: req(r, "report")
                                    .map_err(|e| format!("records[{i}].{e}"))?
                                    .clone(),
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?,
                    _ => return Err("records: expected an array".to_string()),
                };
                Message::Result {
                    job: req_u64(&j, "job")?,
                    shard: req_u64(&j, "shard")?,
                    records,
                }
            }
            9 => Message::Ack {
                job: req_u64(&j, "job")?,
                done: req_u64(&j, "done")?,
                total: req_u64(&j, "total")?,
            },
            10 => Message::Error {
                text: req_str(&j, "text")?,
            },
            other => return Err(format!("unknown frame kind {other}")),
        })
    }
}

fn req<'a>(j: &'a Json, key: &str) -> Result<&'a Json, String> {
    j.get(key).ok_or_else(|| format!("{key}: missing field"))
}

fn req_u64(j: &Json, key: &str) -> Result<u64, String> {
    req(j, key)?
        .as_u64()
        .ok_or_else(|| format!("{key}: expected an unsigned integer"))
}

fn req_str(j: &Json, key: &str) -> Result<String, String> {
    Ok(req(j, key)?
        .as_str()
        .ok_or_else(|| format!("{key}: expected a string"))?
        .to_string())
}

fn req_bool(j: &Json, key: &str) -> Result<bool, String> {
    req(j, key)?
        .as_bool()
        .ok_or_else(|| format!("{key}: expected a boolean"))
}

/// Frames and sends one message.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn send(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    write_frame(w, msg.kind(), msg.to_json().render().as_bytes())
}

/// Receives and decodes one message.
///
/// # Errors
///
/// I/O errors propagate; a frame that decodes to no valid message maps
/// to [`std::io::ErrorKind::InvalidData`].
pub fn recv(r: &mut impl Read) -> io::Result<Message> {
    let (kind, payload) = read_frame(r)?;
    Message::decode(kind, &payload).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame kind {kind}: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let mut buf = Vec::new();
        send(&mut buf, &msg).unwrap();
        assert_eq!(recv(&mut buf.as_slice()).unwrap(), msg);
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Submit {
            spec: Json::obj().field("version", 1u64),
            resume: true,
        });
        round_trip(Message::Accepted { job: 9, cells: 16 });
        round_trip(Message::Poll { job: 9 });
        round_trip(Message::Status {
            job: 9,
            state: "running".to_string(),
            done: 3,
            total: 16,
            artifact: None,
        });
        round_trip(Message::Status {
            job: 9,
            state: "done".to_string(),
            done: 16,
            total: 16,
            artifact: Some("{\"experiment\": \"t0\"}\n".to_string()),
        });
        round_trip(Message::Want {
            worker: "w-1".to_string(),
        });
        round_trip(Message::Shard {
            job: 9,
            shard: 2,
            lo: 4,
            hi: 8,
            total: 16,
            spec: Json::obj().field("version", 1u64),
        });
        round_trip(Message::NoWork { done: false });
        round_trip(Message::Result {
            job: 9,
            shard: 2,
            records: vec![CellRecord {
                cell: 4,
                seed: 4,
                report: Json::obj().field("err", "step limit"),
            }],
        });
        round_trip(Message::Ack {
            job: 9,
            done: 8,
            total: 16,
        });
        round_trip(Message::Error {
            text: "spec.version: unsupported".to_string(),
        });
    }

    #[test]
    fn decode_names_the_first_error() {
        let err = Message::decode(3, b"{\"jobs\": 1}").unwrap_err();
        assert_eq!(err, "job: missing field");
        let err = Message::decode(99, b"{}").unwrap_err();
        assert_eq!(err, "unknown frame kind 99");
        let err = Message::decode(1, b"not json").unwrap_err();
        assert_eq!(err, "payload is not canonical JSON");
    }
}
