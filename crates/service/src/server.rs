//! The sweep server: admits jobs, shards their grids by cost hints,
//! leases shards to workers, and merges results into artifacts that are
//! byte-identical to a local run's.
//!
//! # Shard lifecycle
//!
//! A submitted spec is validated ([`SweepSpec::from_json`] +
//! [`CellGrid::from_spec`]), cut into contiguous shards with
//! [`ChunkPlan::from_costs`] (the same cost hints the local scheduler
//! chunks by), and queued. Workers pull shards with `Want`, run them, and
//! return per-cell results; a shard whose connection drops before its
//! `Result` arrives is requeued at the front of the queue, so a killed
//! worker delays a sweep but never loses it. Results merge by sweep-wide
//! cell index through the runtime's [`OrderedCommitter`] — completion
//! order never touches the artifact, which is rendered by the same
//! [`crate::render_artifact`] path a local run uses.
//!
//! # Failure / resume model
//!
//! With a journal directory configured the server checkpoints merged
//! cells to `job-<digest>.journal` in cell order; a restarted server
//! resumes a resubmitted job from that file (worker shard segments
//! provide the finer-grained resume — see [`crate::worker`]). Duplicate
//! results (a requeued shard finishing twice) are dropped first-wins,
//! matching [`journal::merge_segments`] semantics.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use oraclesize_bench::grid::CellGrid;
use oraclesize_runtime::journal::{self, Journal};
use oraclesize_runtime::{ChunkPlan, Json, OrderedCommitter, RunReport, SweepSpec};

use crate::proto::{recv, send, CellRecord, Message};
use crate::render_artifact;

/// Where and how a [`Server`] runs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7401` (`:0` picks a free port).
    pub addr: String,
    /// Directory for server-side job journals; `None` disables
    /// server-side checkpointing (worker segments are configured on the
    /// workers).
    pub journal_dir: Option<PathBuf>,
    /// Serve exactly this many jobs to completion (artifact delivered to
    /// a poller), then shut down. The CLI and CI smoke job serve 1.
    pub jobs: usize,
    /// Expected worker count — sizes shards via
    /// [`ChunkPlan::from_costs`], scheduling granularity only.
    pub workers_hint: usize,
}

/// One contiguous block of cells leased as a unit.
#[derive(Debug, Clone, Copy)]
struct Shard {
    id: u64,
    lo: usize,
    hi: usize,
}

/// One admitted sweep job.
struct Job {
    spec: SweepSpec,
    total: usize,
    pending: VecDeque<Shard>,
    leased: Vec<(u64, Shard)>,
    committer: OrderedCommitter,
    results: Vec<Option<RunReport>>,
    done_cells: usize,
    artifact: Option<String>,
    delivered: bool,
}

/// Shared server state; every connection handler funnels through this
/// mutex, so merges are serialized and deterministic per arrival order
/// (the artifact itself is arrival-order independent by construction).
struct State {
    jobs: BTreeMap<u64, Job>,
    completed_jobs: usize,
    delivered_jobs: usize,
    target_jobs: usize,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl State {
    fn finished(&self) -> bool {
        self.completed_jobs >= self.target_jobs
    }

    fn delivered(&self) -> bool {
        self.delivered_jobs >= self.target_jobs
    }

    /// Admits a job (idempotently — a spec's digest is its identity).
    fn submit(&mut self, spec_json: &Json, resume: bool, config: &ServerConfig) -> Message {
        let spec = match SweepSpec::from_json(spec_json) {
            Ok(s) => s,
            Err(text) => return Message::Error { text },
        };
        let job_id = spec.digest();
        let total = spec.cells.len();
        if self.jobs.contains_key(&job_id) {
            return Message::Accepted {
                job: job_id,
                cells: total as u64,
            };
        }
        // Materialize the grid once: full validation plus the per-cell
        // cost hints that size the shards. The requests themselves stay
        // with the workers.
        let grid = match CellGrid::from_spec(&spec) {
            Ok(g) => g,
            Err(text) => return Message::Error { text },
        };
        let mut results: Vec<Option<RunReport>> = vec![None; total];
        let mut journal = None;
        if let Some(dir) = &config.journal_dir {
            let path = dir.join(format!("job-{job_id:016x}.journal"));
            let opened = if resume {
                Journal::resume(&path, total).map(|(j, loaded)| {
                    for w in loaded.warnings {
                        eprintln!("serve: {w}");
                    }
                    for rec in loaded.records {
                        if rec.cell < total && rec.seed == spec.cells[rec.cell].seed {
                            results[rec.cell] = Some(rec.report);
                        }
                    }
                    j
                })
            } else {
                Journal::create(&path, total)
            };
            match opened {
                Ok(j) => journal = Some(j),
                Err(e) => eprintln!(
                    "serve: journal {}: {e}; running without checkpoints",
                    path.display()
                ),
            }
        }
        let mut committer = OrderedCommitter::new(journal);
        for (cell, r) in results.iter().enumerate() {
            if r.is_some() {
                // Already durable in the rewritten journal — advance the
                // cursor without re-appending.
                committer.settle(cell, None);
            }
        }
        let pending: VecDeque<Shard> = ChunkPlan::from_costs(grid.costs(), config.workers_hint)
            .chunks()
            .iter()
            .enumerate()
            .filter(|(_, c)| (c.start..c.end).any(|cell| results[cell].is_none()))
            .map(|(i, c)| Shard {
                id: i as u64,
                lo: c.start,
                hi: c.end,
            })
            .collect();
        let done_cells = results.iter().filter(|r| r.is_some()).count();
        eprintln!(
            "serve: job {job_id:016x} \"{}\" accepted: {total} cells, {} shards pending, \
             {done_cells} resumed",
            spec.name,
            pending.len()
        );
        let mut job = Job {
            spec,
            total,
            pending,
            leased: Vec::new(),
            committer,
            results,
            done_cells,
            artifact: None,
            delivered: false,
        };
        if finalize_if_done(&mut job, job_id) {
            self.completed_jobs += 1;
        }
        self.jobs.insert(job_id, job);
        Message::Accepted {
            job: job_id,
            cells: total as u64,
        }
    }

    /// Leases the next pending shard to connection `conn`.
    fn lease(&mut self, conn: u64) -> Message {
        for (&job_id, job) in self.jobs.iter_mut() {
            if let Some(shard) = job.pending.pop_front() {
                let reply = Message::Shard {
                    job: job_id,
                    shard: shard.id,
                    lo: shard.lo as u64,
                    hi: shard.hi as u64,
                    total: job.total as u64,
                    spec: job.spec.to_json(),
                };
                job.leased.push((conn, shard));
                return reply;
            }
        }
        Message::NoWork {
            done: self.finished(),
        }
    }

    /// Merges a returned shard's records (first result per cell wins).
    fn merge(&mut self, conn: u64, job_id: u64, shard: u64, records: &[CellRecord]) -> Message {
        let Some(job) = self.jobs.get_mut(&job_id) else {
            return Message::Error {
                text: format!("unknown job {job_id:016x}"),
            };
        };
        job.leased.retain(|(c, s)| !(*c == conn && s.id == shard));
        for rec in records {
            let cell = rec.cell as usize;
            if cell >= job.total || job.results[cell].is_some() {
                continue;
            }
            let Some(report) = journal::report_from_json(cell, &rec.report) else {
                eprintln!("serve: job {job_id:016x}: malformed report for cell {cell}; dropped");
                continue;
            };
            job.results[cell] = Some(report.clone());
            job.committer.settle(cell, Some((rec.seed, report)));
            job.done_cells += 1;
        }
        let reply = Message::Ack {
            job: job_id,
            done: job.done_cells as u64,
            total: job.total as u64,
        };
        if finalize_if_done(job, job_id) {
            self.completed_jobs += 1;
        }
        reply
    }

    /// A job's progress; the second value asks the handler to mark the
    /// job delivered once the reply is actually on the wire.
    fn status(&self, job_id: u64) -> (Message, Option<u64>) {
        let Some(job) = self.jobs.get(&job_id) else {
            return (
                Message::Error {
                    text: format!("unknown job {job_id:016x}"),
                },
                None,
            );
        };
        match &job.artifact {
            Some(artifact) => (
                Message::Status {
                    job: job_id,
                    state: "done".to_string(),
                    done: job.total as u64,
                    total: job.total as u64,
                    artifact: Some(artifact.clone()),
                },
                Some(job_id),
            ),
            None => (
                Message::Status {
                    job: job_id,
                    state: "running".to_string(),
                    done: job.done_cells as u64,
                    total: job.total as u64,
                    artifact: None,
                },
                None,
            ),
        }
    }

    fn mark_delivered(&mut self, job_id: u64) {
        if let Some(job) = self.jobs.get_mut(&job_id) {
            if !job.delivered {
                job.delivered = true;
                self.delivered_jobs += 1;
            }
        }
    }

    /// Requeues every shard the closed connection still held.
    fn release(&mut self, conn: u64) {
        for (&job_id, job) in self.jobs.iter_mut() {
            let mut dropped: Vec<Shard> = Vec::new();
            job.leased.retain(|(c, s)| {
                if *c == conn {
                    dropped.push(*s);
                    false
                } else {
                    true
                }
            });
            dropped.sort_by_key(|s| s.id);
            for shard in dropped.into_iter().rev() {
                eprintln!(
                    "serve: job {job_id:016x}: shard {} (cells {}..{}) requeued after \
                     its worker disconnected",
                    shard.id, shard.lo, shard.hi
                );
                job.pending.push_front(shard);
            }
        }
    }

    /// One protocol exchange; the second value is a job to mark
    /// delivered once the reply lands.
    fn reply(&mut self, conn: u64, msg: &Message, config: &ServerConfig) -> (Message, Option<u64>) {
        match msg {
            Message::Submit { spec, resume } => (self.submit(spec, *resume, config), None),
            Message::Poll { job } => self.status(*job),
            Message::Want { .. } => (self.lease(conn), None),
            Message::Result {
                job,
                shard,
                records,
            } => (self.merge(conn, *job, *shard, records), None),
            other => (
                Message::Error {
                    text: format!("unexpected message kind {}", other.kind()),
                },
                None,
            ),
        }
    }
}

/// Renders the artifact once every cell has merged. Returns `true` when
/// the job just completed.
fn finalize_if_done(job: &mut Job, job_id: u64) -> bool {
    if job.artifact.is_some() || job.done_cells != job.total {
        return false;
    }
    let reports: Vec<RunReport> = job.results.iter().filter_map(|r| r.clone()).collect();
    job.artifact = Some(render_artifact(&job.spec, &reports));
    eprintln!(
        "serve: job {job_id:016x} \"{}\" done: {} cells merged",
        job.spec.name, job.total
    );
    true
}

/// Serves one connection (a worker, a submitting client, or both in
/// turn — the protocol is stateless per frame).
fn handle(conn: u64, mut stream: TcpStream, state: Arc<Mutex<State>>, config: Arc<ServerConfig>) {
    // EOF is the normal end of a session; any other recv error is the
    // peer's problem — either way the loop ends and the leases come back.
    while let Ok(msg) = recv(&mut stream) {
        let (reply, delivered) = lock(&state).reply(conn, &msg, &config);
        if send(&mut stream, &reply).is_err() {
            break;
        }
        if let Some(job_id) = delivered {
            lock(&state).mark_delivered(job_id);
        }
    }
    lock(&state).release(conn);
}

/// A bound sweep server. [`Server::run`] accepts connections until the
/// configured number of jobs has been served and delivered.
pub struct Server {
    listener: TcpListener,
    state: Arc<Mutex<State>>,
    config: Arc<ServerConfig>,
}

impl Server {
    /// Binds the configured address without accepting yet, so callers
    /// can learn the port (`:0` binds) before starting workers.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = State {
            jobs: BTreeMap::new(),
            completed_jobs: 0,
            delivered_jobs: 0,
            target_jobs: config.jobs.max(1),
        };
        Ok(Server {
            listener,
            state: Arc::new(Mutex::new(state)),
            config: Arc::new(config),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until every configured job has
    /// been completed and its artifact delivered to a poller.
    ///
    /// # Errors
    ///
    /// Propagates listener errors; per-connection errors only end that
    /// connection (releasing its shard leases).
    pub fn run(self) -> io::Result<()> {
        // Nonblocking accept so the loop can observe "all jobs
        // delivered" and stop; connection I/O itself stays blocking.
        self.listener.set_nonblocking(true)?;
        let mut next_conn = 0u64;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    next_conn += 1;
                    let conn = next_conn;
                    let state = Arc::clone(&self.state);
                    let config = Arc::clone(&self.config);
                    // lint:allow(D003): connection handlers are I/O-bound
                    // waiters, not compute parallelism; every engine cell
                    // still runs inside a worker's runtime::pool, and
                    // results merge through the OrderedCommitter in cell
                    // order regardless of handler interleaving.
                    std::thread::spawn(move || handle(conn, stream, state, config));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if lock(&self.state).delivered() {
                        return Ok(());
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }
}
