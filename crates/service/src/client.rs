//! The submitting client: sends a spec, polls until done, returns the
//! merged artifact bytes.

use std::time::Duration;

use oraclesize_runtime::SweepSpec;

use crate::connect_with_retries;
use crate::proto::{recv, send, Message};

/// Submits a rendered [`SweepSpec`] to the server at `addr` and polls
/// every `poll_ms` milliseconds until the merged artifact arrives.
/// `resume` lets the server prefill from its job journal.
///
/// The returned string is the artifact file's exact contents —
/// byte-identical to what a local run of the same spec writes.
///
/// # Errors
///
/// Returns a message for an unparseable spec (validated locally before
/// anything is sent), an unreachable server, or a server-side rejection.
pub fn submit(addr: &str, spec_text: &str, resume: bool, poll_ms: u64) -> Result<String, String> {
    let spec = SweepSpec::parse(spec_text)?;
    let mut stream =
        connect_with_retries(addr, 50, poll_ms).map_err(|e| format!("connect {addr}: {e}"))?;
    send(
        &mut stream,
        &Message::Submit {
            spec: spec.to_json(),
            resume,
        },
    )
    .map_err(|e| format!("submit: {e}"))?;
    let job = match recv(&mut stream).map_err(|e| format!("submit: {e}"))? {
        Message::Accepted { job, cells } => {
            eprintln!(
                "submit: job {job:016x} \"{}\" accepted ({cells} cells)",
                spec.name
            );
            job
        }
        Message::Error { text } => return Err(text),
        other => return Err(format!("unexpected message kind {}", other.kind())),
    };
    loop {
        send(&mut stream, &Message::Poll { job }).map_err(|e| format!("poll: {e}"))?;
        match recv(&mut stream).map_err(|e| format!("poll: {e}"))? {
            Message::Status {
                state, artifact, ..
            } if state == "done" => {
                return artifact.ok_or_else(|| "done status carried no artifact".to_string());
            }
            Message::Status { done, total, .. } => {
                eprintln!("submit: job {job:016x} running: {done}/{total} cells");
                std::thread::sleep(Duration::from_millis(poll_ms.max(1)));
            }
            Message::Error { text } => return Err(text),
            other => return Err(format!("unexpected message kind {}", other.kind())),
        }
    }
}
