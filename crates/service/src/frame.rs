//! The wire framing: every protocol message travels as one
//! length-prefixed, digest-checked binary frame.
//!
//! # Frame layout
//!
//! A fixed 20-byte big-endian header followed by the payload bytes:
//!
//! ```text
//! offset  size  field
//! 0       4     magic   "OSWP" (Oracle Size Wire Protocol)
//! 4       2     version frame format version; this build speaks 1
//! 6       2     kind    message kind (see [`crate::proto`])
//! 8       4     len     payload length in bytes (capped at 64 MiB)
//! 12      8     digest  FNV-1a 64 of the payload
//! 20      len   payload rendered JSON (see [`crate::proto`])
//! ```
//!
//! The digest reuses [`oraclesize_runtime::journal::fnv1a64`] — the same
//! integrity check the checkpoint journal applies to its records — so a
//! truncated or bit-rotted frame surfaces as [`std::io::ErrorKind::InvalidData`]
//! at the read site instead of as a JSON parse failure three layers up.
//! It guards against corruption, not adversaries; the service is meant
//! for loopback and trusted lab networks.

use std::io::{self, Read, Write};

use oraclesize_runtime::journal::fnv1a64;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"OSWP";

/// The frame format version this build writes and accepts.
pub const VERSION: u16 = 1;

/// Hard cap on payload size. Far above any real sweep message (a
/// 10⁵-cell result batch renders in the low tens of megabytes) while
/// keeping a corrupt length field from provoking a giant allocation.
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Total header size in bytes.
pub const HEADER_LEN: usize = 20;

fn bad(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

/// Writes one frame and flushes it.
///
/// # Errors
///
/// Propagates I/O errors; payloads over [`MAX_PAYLOAD`] are rejected with
/// [`std::io::ErrorKind::InvalidData`] before anything is written.
pub fn write_frame(w: &mut impl Write, kind: u16, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_PAYLOAD)
        .ok_or_else(|| {
            bad(format!(
                "frame payload of {} bytes exceeds cap",
                payload.len()
            ))
        })?;
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&VERSION.to_be_bytes());
    header[6..8].copy_from_slice(&kind.to_be_bytes());
    header[8..12].copy_from_slice(&len.to_be_bytes());
    header[12..20].copy_from_slice(&fnv1a64(payload).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, validating magic, version, length, and digest.
///
/// # Errors
///
/// [`std::io::ErrorKind::UnexpectedEof`] on a cleanly closed peer;
/// [`std::io::ErrorKind::InvalidData`] on any header or digest violation;
/// other I/O errors propagate untouched.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u16, Vec<u8>)> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(bad("frame magic mismatch (not an oraclesize peer?)"));
    }
    let version = u16::from_be_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(bad(format!(
            "frame version {version} (this build speaks {VERSION})"
        )));
    }
    let kind = u16::from_be_bytes([header[6], header[7]]);
    let len = u32::from_be_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_PAYLOAD {
        return Err(bad(format!("frame announces {len} bytes, over the cap")));
    }
    let digest = u64::from_be_bytes([
        header[12], header[13], header[14], header[15], header[16], header[17], header[18],
        header[19],
    ]);
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if fnv1a64(&payload) != digest {
        return Err(bad("frame digest mismatch (corrupt payload)"));
    }
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"{\"job\": 3}").unwrap();
        write_frame(&mut buf, 2, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), (7, b"{\"job\": 3}".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), (2, Vec::new()));
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn corrupt_frames_are_invalid_data() {
        let mut good = Vec::new();
        write_frame(&mut good, 1, b"payload").unwrap();
        // Bad magic.
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            read_frame(&mut bad_magic.as_slice()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        // Bad version.
        let mut bad_version = good.clone();
        bad_version[5] = 9;
        assert_eq!(
            read_frame(&mut bad_version.as_slice()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        // Flipped payload bit → digest mismatch.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert_eq!(
            read_frame(&mut flipped.as_slice()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
        // Torn payload → unexpected EOF.
        let torn = &good[..good.len() - 3];
        assert_eq!(
            read_frame(&mut &torn[..]).unwrap_err().kind(),
            std::io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_payload_is_rejected_before_writing() {
        let mut header = [0u8; HEADER_LEN];
        header[0..4].copy_from_slice(&MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_be_bytes());
        header[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert_eq!(
            read_frame(&mut header.as_slice()).unwrap_err().kind(),
            std::io::ErrorKind::InvalidData
        );
    }
}
