//! The sweep worker: pulls shards from a server, runs them through the
//! supervised runtime, and streams per-cell results back.
//!
//! A shard runs via [`run_supervised_shard`] with the sweep-wide cell
//! base, so reports, journal records, and seeds all use global cell
//! indices — the same execution path a local sweep takes, which is what
//! makes the server's merged artifact byte-identical to a local run.
//!
//! With a journal directory configured, each shard checkpoints to its
//! own segment file (`job-<digest>-shard-<lo>-<hi>.journal`), always
//! opened in resume mode: a fresh shard finds no file (an empty resume),
//! while a shard requeued after a worker death finds its predecessor's
//! partial segment and replays the completed cells instead of re-running
//! them. Workers that share a journal directory therefore hand work off
//! across deaths without coordination beyond the server's requeue.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

use oraclesize_bench::grid::CellGrid;
use oraclesize_runtime::journal::report_json;
use oraclesize_runtime::{run_supervised_shard, ChaosPlan, Pool, SweepOptions, SweepSpec};

use crate::proto::{recv, send, CellRecord, Message};
use crate::{connect_with_retries, supervise_config};

/// How one worker connects and runs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Server address, e.g. `127.0.0.1:7401`.
    pub connect: String,
    /// Local pool threads for running shard cells.
    pub threads: usize,
    /// Directory for per-shard segment journals; share it between
    /// workers (and their replacements) to get crash handoff.
    pub journal_dir: Option<PathBuf>,
    /// Idle poll interval in milliseconds.
    pub poll_ms: u64,
    /// Fault drill: run the Nth claimed shard (1-based) only up to its
    /// midpoint, journal that progress, then stop without reporting —
    /// the in-process stand-in for `kill -9` that the CI smoke job and
    /// the resume tests drive.
    pub die_mid_shard: Option<u64>,
    /// Worker name, echoed in server logs.
    pub name: String,
}

/// How a worker's session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// The server reported all jobs done (or went away after serving
    /// them); normal shutdown.
    Finished {
        /// Shards completed and acknowledged.
        shards: u64,
        /// Cells across those shards.
        cells: u64,
    },
    /// The [`WorkerConfig::die_mid_shard`] drill fired: the shard was
    /// abandoned half-journaled and the connection dropped.
    Died {
        /// Shards completed before the drill.
        shards: u64,
    },
}

/// Runs the worker loop until the server signals shutdown.
///
/// # Errors
///
/// Returns a message when the server is unreachable before any work was
/// done, rejects a request, or sends a spec this build cannot lower.
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerOutcome, String> {
    let pool = Pool::new(config.threads.max(1));
    let mut cache: BTreeMap<u64, (SweepSpec, CellGrid)> = BTreeMap::new();
    let mut shards_done = 0u64;
    let mut cells_done = 0u64;
    let mut claimed = 0u64;
    let mut sessions = 0u32;
    'session: loop {
        sessions += 1;
        // After the first session, a dead server most likely finished
        // its job budget and exited between two of our polls — shut
        // down quietly rather than erroring a completed sweep.
        if sessions > 5 {
            return Ok(WorkerOutcome::Finished {
                shards: shards_done,
                cells: cells_done,
            });
        }
        let mut stream = match connect_with_retries(&config.connect, 50, config.poll_ms) {
            Ok(s) => s,
            Err(e) if sessions == 1 => return Err(format!("connect {}: {e}", config.connect)),
            Err(_) => {
                return Ok(WorkerOutcome::Finished {
                    shards: shards_done,
                    cells: cells_done,
                })
            }
        };
        loop {
            let want = Message::Want {
                worker: config.name.clone(),
            };
            if send(&mut stream, &want).is_err() {
                continue 'session;
            }
            let msg = match recv(&mut stream) {
                Ok(m) => m,
                Err(_) => continue 'session,
            };
            match msg {
                Message::Shard {
                    job,
                    shard,
                    lo,
                    hi,
                    total,
                    spec,
                } => {
                    let (lo, hi, total) = (lo as usize, hi as usize, total as usize);
                    if let std::collections::btree_map::Entry::Vacant(slot) = cache.entry(job) {
                        let parsed = SweepSpec::from_json(&spec)
                            .map_err(|e| format!("server sent a bad spec: {e}"))?;
                        let grid = CellGrid::from_spec(&parsed)
                            .map_err(|e| format!("cannot lower job {job:016x}: {e}"))?;
                        slot.insert((parsed, grid));
                    }
                    let Some((parsed, grid)) = cache.get(&job) else {
                        continue;
                    };
                    if hi > grid.len() || lo > hi || total != grid.len() {
                        return Err(format!(
                            "shard {lo}..{hi} of {total} does not fit the {}-cell grid",
                            grid.len()
                        ));
                    }
                    claimed += 1;
                    let dying = config.die_mid_shard == Some(claimed);
                    let opts = SweepOptions {
                        supervise: supervise_config(&parsed.knobs),
                        journal: config
                            .journal_dir
                            .as_ref()
                            .map(|d| d.join(format!("job-{job:016x}-shard-{lo}-{hi}.journal"))),
                        // Resuming is always safe: a fresh shard loads an
                        // empty journal, a requeued one replays its
                        // predecessor's checkpoints.
                        resume: true,
                        seeds: Some(parsed.cells[lo..hi].iter().map(|c| c.seed).collect()),
                        chaos: if dying {
                            ChaosPlan::new().die_before(lo + (hi - lo) / 2)
                        } else {
                            ChaosPlan::new()
                        },
                        chunk: parsed.knobs.chunk.map(|c| c as usize),
                        costs: Some(grid.costs()[lo..hi].to_vec()),
                    };
                    let run =
                        run_supervised_shard(&pool, &grid.requests()[lo..hi], lo, total, &opts);
                    for w in &run.warnings {
                        eprintln!("work[{}]: {w}", config.name);
                    }
                    if dying {
                        eprintln!(
                            "work[{}]: die-mid-shard drill fired on shard {shard} \
                             (cells {lo}..{hi}); abandoning it",
                            config.name
                        );
                        return Ok(WorkerOutcome::Died {
                            shards: shards_done,
                        });
                    }
                    let records: Vec<CellRecord> = run
                        .cells
                        .iter()
                        .enumerate()
                        .map(|(local, cell)| CellRecord {
                            cell: (lo + local) as u64,
                            seed: parsed.cells[lo + local].seed,
                            report: report_json(&cell.report),
                        })
                        .collect();
                    let result = Message::Result {
                        job,
                        shard,
                        records,
                    };
                    if send(&mut stream, &result).is_err() {
                        continue 'session;
                    }
                    match recv(&mut stream) {
                        Ok(Message::Ack { .. }) => {}
                        Ok(Message::Error { text }) => return Err(text),
                        Ok(_) | Err(_) => continue 'session,
                    }
                    shards_done += 1;
                    cells_done += (hi - lo) as u64;
                }
                Message::NoWork { done: true } => {
                    return Ok(WorkerOutcome::Finished {
                        shards: shards_done,
                        cells: cells_done,
                    })
                }
                Message::NoWork { done: false } => {
                    std::thread::sleep(Duration::from_millis(config.poll_ms.max(1)));
                }
                Message::Error { text } => return Err(text),
                other => {
                    return Err(format!(
                        "unexpected message kind {} from server",
                        other.kind()
                    ))
                }
            }
        }
    }
}
