//! End-to-end service tests: a real server and real workers on loopback,
//! pinned against the local execution path byte for byte.

use std::path::PathBuf;
use std::thread;

use oraclesize_runtime::{CellSpec, FaultSpec, InstanceSpec, SweepSpec};
use oraclesize_service::{
    run_local, run_worker, submit, Server, ServerConfig, WorkerConfig, WorkerOutcome,
};
use proptest::prelude::*;

/// A small mixed sweep: two instances, two schemes, both task modes.
fn tiny_spec(name: &str, cells: usize) -> SweepSpec {
    let mut spec = SweepSpec::new(name, 2006);
    spec.instances.push(InstanceSpec {
        family: "cycle".to_string(),
        n: 8,
        seed: 0,
        p_ppm: None,
        source: 0,
        oracle: "empty".to_string(),
    });
    spec.instances.push(InstanceSpec {
        family: "path".to_string(),
        n: 9,
        seed: 0,
        p_ppm: None,
        source: 0,
        oracle: "spanning-tree".to_string(),
    });
    for i in 0..cells {
        let wakeup = i % 2 == 1;
        spec.cells.push(CellSpec {
            label: format!("cell-{i}"),
            instance: u64::from(wakeup),
            scheme: if wakeup { "tree-wakeup" } else { "flood" }.to_string(),
            retries: None,
            mode: if wakeup { "wakeup" } else { "broadcast" }.to_string(),
            scheduler: None,
            anonymous: false,
            max_message_bits: None,
            quiescence_polls: None,
            seed: i as u64,
            faults: FaultSpec::default(),
        });
    }
    spec
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("oraclesize-service-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn worker_config(addr: &str, name: &str, journal_dir: Option<PathBuf>) -> WorkerConfig {
    WorkerConfig {
        connect: addr.to_string(),
        threads: 2,
        journal_dir,
        poll_ms: 5,
        die_mid_shard: None,
        name: name.to_string(),
    }
}

/// Runs `spec` through a fresh server with `workers` concurrent workers
/// and returns the merged artifact.
fn run_distributed(spec: &SweepSpec, workers: usize, journal_dir: Option<PathBuf>) -> String {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        journal_dir: journal_dir.clone(),
        jobs: 1,
        workers_hint: workers,
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let server_thread = thread::spawn(move || server.run().unwrap());
    let spec_text = spec.render();
    let submit_addr = addr.clone();
    let client = thread::spawn(move || submit(&submit_addr, &spec_text, true, 5));
    let worker_threads: Vec<_> = (0..workers)
        .map(|i| {
            let cfg = worker_config(&addr, &format!("w-{i}"), journal_dir.clone());
            thread::spawn(move || run_worker(&cfg))
        })
        .collect();
    let artifact = client.join().unwrap().expect("submit");
    for t in worker_threads {
        let outcome = t.join().unwrap().expect("worker");
        assert!(
            matches!(outcome, WorkerOutcome::Finished { .. }),
            "{outcome:?}"
        );
    }
    server_thread.join().unwrap();
    artifact
}

#[test]
fn one_worker_matches_local_run() {
    let spec = tiny_spec("svc-one", 6);
    let local = run_local(&spec, 2).unwrap();
    let distributed = run_distributed(&spec, 1, None);
    assert_eq!(distributed, local);
    assert!(distributed.ends_with('\n'));
    assert!(distributed.contains("\"experiment\": \"svc-one\""));
}

#[test]
fn three_workers_match_local_run() {
    let spec = tiny_spec("svc-three", 11);
    let local = run_local(&spec, 2).unwrap();
    assert_eq!(run_distributed(&spec, 3, None), local);
}

#[test]
fn killed_worker_is_requeued_and_resumed_byte_identically() {
    let spec = tiny_spec("svc-kill", 10);
    let local = run_local(&spec, 2).unwrap();
    let dir = temp_dir("kill");

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        journal_dir: Some(dir.clone()),
        jobs: 1,
        workers_hint: 2,
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let server_thread = thread::spawn(move || server.run().unwrap());
    let spec_text = spec.render();
    let submit_addr = addr.clone();
    let client = thread::spawn(move || submit(&submit_addr, &spec_text, true, 5));

    // Worker A claims the first shard, journals its first half, and
    // "dies" (drops the connection without reporting).
    let mut doomed = worker_config(&addr, "w-doomed", Some(dir.clone()));
    doomed.die_mid_shard = Some(1);
    let outcome = run_worker(&doomed).expect("doomed worker");
    assert!(matches!(outcome, WorkerOutcome::Died { .. }), "{outcome:?}");
    // Its partial segment journal is on disk for the successor.
    let segments = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains("-shard-"))
        .count();
    assert!(segments > 0, "the dead worker left no segment journal");

    // Worker B picks up the requeued shard (resuming A's checkpoints)
    // plus everything else.
    let survivor = worker_config(&addr, "w-survivor", Some(dir.clone()));
    let outcome = run_worker(&survivor).expect("survivor worker");
    assert!(
        matches!(outcome, WorkerOutcome::Finished { .. }),
        "{outcome:?}"
    );

    let artifact = client.join().unwrap().expect("submit");
    server_thread.join().unwrap();
    assert_eq!(artifact, local);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resubmitting_to_a_journaled_server_resumes_server_side() {
    let spec = tiny_spec("svc-resub", 5);
    let local = run_local(&spec, 1).unwrap();
    let dir = temp_dir("resub");
    // First pass populates the server's job journal…
    assert_eq!(run_distributed(&spec, 1, Some(dir.clone())), local);
    // …which the second server resumes: the job completes with zero
    // pending shards, so the worker below only ever sees NoWork.
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        journal_dir: Some(dir.clone()),
        jobs: 1,
        workers_hint: 1,
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let server_thread = thread::spawn(move || server.run().unwrap());
    let spec_text = spec.render();
    let submit_addr = addr.clone();
    let client = thread::spawn(move || submit(&submit_addr, &spec_text, true, 5));
    let worker = worker_config(&addr, "w-idle", None);
    let outcome = run_worker(&worker).expect("worker");
    assert_eq!(
        outcome,
        WorkerOutcome::Finished {
            shards: 0,
            cells: 0
        }
    );
    assert_eq!(client.join().unwrap().expect("submit"), local);
    server_thread.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_specs_are_rejected_with_the_first_error() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        journal_dir: None,
        jobs: 1,
        workers_hint: 1,
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let _server_thread = thread::spawn(move || server.run());
    // Parse failure is caught locally, before anything is sent.
    let err = submit(&addr, "{\"version\": 2}", true, 5).unwrap_err();
    assert_eq!(
        err,
        "spec.version: unsupported version 2 (this build reads 1)"
    );
    // A structurally valid spec the grid cannot lower is rejected by the
    // server with the bench layer's first error.
    let mut spec = tiny_spec("svc-bad", 2);
    spec.cells[1].scheme = "psychic".to_string();
    let err = submit(&addr, &spec.render(), true, 5).unwrap_err();
    assert_eq!(err, "cells[1].scheme: unknown scheme \"psychic\"");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole invariant: local, 1-worker, and 3-worker runs of a
    /// random small sweep produce byte-identical merged artifacts.
    #[test]
    fn local_one_worker_and_three_workers_agree(cells in 1usize..9, threads in 1usize..4) {
        let spec = tiny_spec("svc-prop", cells);
        let local = run_local(&spec, threads).unwrap();
        prop_assert_eq!(&run_distributed(&spec, 1, None), &local);
        prop_assert_eq!(&run_distributed(&spec, 3, None), &local);
    }
}
