//! The Lemma 2.1 adversary in *closed form*, for instance families far too
//! large to enumerate.
//!
//! Over the canonical family — `X` ranges over all ordered `k`-tuples of
//! distinct edges from a pool of `u₀` edges (exactly the `G_{n,S}` family
//! of Theorem 2.2) — the active-instance counts after any probe history are
//! falling factorials, so the majority adversary can be played *exactly*
//! without materializing a single instance:
//!
//! * active instances with `r` specials revealed and `u` unprobed pool
//!   edges: `A(u, k−r) = u·(u−1)···(u−k+r+1)`,
//! * a probe of edge `e` splits this into
//!   `special = (k−r)·A(u−1, k−r−1)` (one of the remaining labels lands on
//!   `e`) vs `regular = A(u−1, k−r)`,
//! * so the majority answer is *special* iff `(k−r) ≥ u−k+r`, i.e. only
//!   once the pool is nearly exhausted — which is exactly why the
//!   adversary forces nearly all of `K*_n` to be probed.
//!
//! The mass invariant of the proof (`x_{t,r} ≥ |I|·(|X|−r)!/(2^t·|X|!)`)
//! is tracked in log2 and asserted after every probe.

use std::collections::BTreeSet;

use crate::counting::log2_factorial;
use crate::discovery::{DiscoveryStrategy, Edge, GameView};

/// `log2` of the falling factorial `A(u, j) = u·(u−1)···(u−j+1)`.
pub fn log2_falling(u: u64, j: u64) -> f64 {
    assert!(j <= u, "A({u},{j}) is zero");
    (0..j).map(|i| ((u - i) as f64).log2()).sum()
}

/// The closed-form majority adversary over the canonical ordered-tuple
/// family.
#[derive(Debug, Clone)]
pub struct SymbolicAdversary {
    pool: Vec<Edge>,
    probed: BTreeSet<Edge>,
    revealed: Vec<(Edge, usize)>,
    x_size: usize,
    probes: usize,
    initial_log2: f64,
}

impl SymbolicAdversary {
    /// An adversary whose instances are all ordered `x_size`-tuples of
    /// distinct edges from `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `x_size == 0` or exceeds the pool.
    pub fn new(pool: Vec<Edge>, x_size: usize) -> Self {
        assert!(x_size >= 1 && x_size <= pool.len(), "bad x_size");
        let initial_log2 = log2_falling(pool.len() as u64, x_size as u64);
        SymbolicAdversary {
            pool,
            probed: BTreeSet::new(),
            revealed: Vec::new(),
            x_size,
            probes: 0,
            initial_log2,
        }
    }

    /// `log2` of the number of still-active instances.
    pub fn log2_active(&self) -> f64 {
        let u = (self.pool.len() - self.probed.len()) as u64;
        let j = (self.x_size - self.revealed.len()) as u64;
        log2_falling(u, j)
    }

    /// `log2 |I|` of the initial family.
    pub fn log2_initial(&self) -> f64 {
        self.initial_log2
    }

    /// Lemma 2.1 bound for this family: `log2|I| − log2(|X|!)`.
    pub fn lemma_bound(&self) -> f64 {
        self.initial_log2 - log2_factorial(self.x_size as u64)
    }

    /// Probes answered so far.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Revealed specials so far.
    pub fn revealed(&self) -> &[(Edge, usize)] {
        &self.revealed
    }

    /// `true` when exactly one instance is consistent and fully revealed.
    pub fn is_settled(&self) -> bool {
        self.revealed.len() == self.x_size
    }

    /// Answers a probe with the exact majority side.
    ///
    /// # Panics
    ///
    /// Panics on a repeated probe or an edge outside the pool.
    pub fn respond(&mut self, e: Edge) -> crate::adversary::ProbeResult {
        assert!(self.pool.contains(&e), "edge {e:?} not in the pool");
        assert!(self.probed.insert(e), "edge {e:?} probed twice");
        self.probes += 1;
        let u = (self.pool.len() - self.probed.len() + 1) as u64; // incl. e
        let remaining = (self.x_size - self.revealed.len()) as u64;
        // special = remaining · A(u−1, remaining−1); regular = A(u−1, remaining)
        // = (u−remaining) · A(u−1, remaining−1).  Majority by comparing the
        // scalar factors.
        if remaining >= u - remaining {
            // Plurality label: all remaining labels tie; reveal the smallest.
            let used: BTreeSet<usize> = self.revealed.iter().map(|&(_, l)| l).collect();
            let label = (0..self.x_size)
                .find(|l| !used.contains(l))
                .expect("labels remain");
            self.revealed.push((e, label));
            crate::adversary::ProbeResult::Special { label }
        } else {
            crate::adversary::ProbeResult::Regular
        }
    }

    /// The proof's mass invariant in log2:
    /// `log2|I| + log2((|X|−r)!) − t − log2(|X|!)`.
    pub fn invariant_log2_mass(&self) -> f64 {
        self.initial_log2 + log2_factorial((self.x_size - self.revealed.len()) as u64)
            - self.probes as f64
            - log2_factorial(self.x_size as u64)
    }
}

/// The result of a symbolic game.
#[derive(Debug, Clone)]
pub struct SymbolicGameResult {
    /// Probes the strategy needed.
    pub probes: usize,
    /// Lemma 2.1 lower bound for the family.
    pub bound: f64,
    /// `log2 |I|` of the family (for reporting).
    pub log2_instances: f64,
}

/// Plays `strategy` against the symbolic adversary on `K*_n` with the
/// given pool (`y` edges are excluded from both pool and probing).
///
/// # Panics
///
/// Panics if the strategy repeats a probe, probes a `Y` edge, or fails to
/// settle after exhausting the pool.
pub fn play_symbolic(
    n: usize,
    pool: Vec<Edge>,
    y: &BTreeSet<Edge>,
    x_size: usize,
    strategy: &mut dyn DiscoveryStrategy,
) -> SymbolicGameResult {
    let mut adversary = SymbolicAdversary::new(pool, x_size);
    let mut regular: BTreeSet<Edge> = BTreeSet::new();
    let budget = adversary.pool.len();
    while !adversary.is_settled() {
        assert!(
            adversary.probes() <= budget,
            "strategy exhausted the pool without settling"
        );
        let revealed = adversary.revealed().to_vec();
        let view = GameView {
            n,
            x_size,
            y,
            revealed: &revealed,
            regular: &regular,
        };
        let probe = strategy.next_probe(&view);
        assert!(!view.is_known(probe), "strategy repeated probe {probe:?}");
        match adversary.respond(probe) {
            crate::adversary::ProbeResult::Regular => {
                regular.insert(probe);
            }
            crate::adversary::ProbeResult::Special { .. } => {}
        }
        debug_assert!(
            adversary.log2_active() >= adversary.invariant_log2_mass() - 1e-9,
            "mass invariant violated"
        );
    }
    SymbolicGameResult {
        probes: adversary.probes(),
        bound: adversary.lemma_bound(),
        log2_instances: adversary.log2_initial(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{all_ordered_instances, play, ExplicitAdversary};
    use crate::discovery::{all_edges, RandomStrategy, SequentialStrategy};

    #[test]
    fn falling_factorial_matches_direct() {
        assert_eq!(log2_falling(5, 0), 0.0);
        assert!((log2_falling(5, 2) - 20f64.log2()).abs() < 1e-12);
        assert!((log2_falling(10, 3) - 720f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn symbolic_matches_explicit_on_small_pools() {
        // The closed-form counts must agree with explicit enumeration:
        // same probe count for the same (deterministic) strategy.
        for n in [5usize, 6] {
            for x_size in [1usize, 2] {
                let pool = all_edges(n);
                let family = all_ordered_instances(&pool, x_size);
                let explicit = play(
                    n,
                    &BTreeSet::new(),
                    ExplicitAdversary::new(family),
                    &mut SequentialStrategy,
                );
                let symbolic =
                    play_symbolic(n, pool, &BTreeSet::new(), x_size, &mut SequentialStrategy);
                assert_eq!(
                    explicit.probes, symbolic.probes,
                    "n={n} x={x_size}: explicit {} vs symbolic {}",
                    explicit.probes, symbolic.probes
                );
                assert!((explicit.bound - symbolic.bound).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn symbolic_scales_to_huge_pools() {
        // K*_40: pool of 780 edges, |X| = 40 — |I| ≈ 2^383, far beyond
        // enumeration; the symbolic game runs in milliseconds.
        let n = 40;
        let pool = all_edges(n);
        let x_size = n;
        let result = play_symbolic(
            n,
            pool.clone(),
            &BTreeSet::new(),
            x_size,
            &mut SequentialStrategy,
        );
        assert!(result.log2_instances > 300.0);
        assert!((result.probes as f64) >= result.bound);
        // The adversary forces nearly the whole pool.
        assert!(result.probes >= pool.len() - x_size);
    }

    #[test]
    fn symbolic_bound_holds_for_random_strategies() {
        let n = 12;
        let pool = all_edges(n);
        for seed in 0..5 {
            let result = play_symbolic(
                n,
                pool.clone(),
                &BTreeSet::new(),
                6,
                &mut RandomStrategy::new(seed),
            );
            assert!((result.probes as f64) >= result.bound, "seed {seed}");
        }
    }

    #[test]
    fn majority_switches_to_special_only_near_exhaustion() {
        // With x_size = 1 over u₀ edges, the adversary answers regular
        // until exactly 2 edges remain unprobed (1 ≥ u−1 ⟺ u ≤ 2).
        let pool = all_edges(5); // 10 edges
        let mut adv = SymbolicAdversary::new(pool.clone(), 1);
        let mut specials = 0;
        for (i, e) in pool.iter().enumerate() {
            if adv.is_settled() {
                break;
            }
            match adv.respond(*e) {
                crate::adversary::ProbeResult::Special { .. } => {
                    specials += 1;
                    assert!(i >= 8, "special answered too early (probe {i})");
                }
                crate::adversary::ProbeResult::Regular => {}
            }
        }
        assert_eq!(specials, 1);
    }

    #[test]
    #[should_panic(expected = "probed twice")]
    fn repeated_probe_rejected() {
        let mut adv = SymbolicAdversary::new(all_edges(4), 1);
        let _ = adv.respond((0, 1));
        let _ = adv.respond((0, 1));
    }
}
