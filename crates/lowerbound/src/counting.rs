//! The counting arguments of Theorems 2.2 and 3.2, in exact log2
//! arithmetic.
//!
//! Everything is computed as `log2` of the (astronomically large)
//! quantities in the proofs, so experiment T7/T8/T9 can tabulate the
//! implied message bounds for concrete parameters:
//!
//! * `P` — number of distinct constructions the oracle must serve
//!   (`Theorem 2.2`: labeled graphs `G_{n,S}`; `Theorem 3.2`: instances of
//!   edge discovery),
//! * `Q` — number of distinct advice assignments an oracle of size `q` can
//!   produce on `2n`-node graphs: `Q = Σ_{q'≤q} 2^{q'}·C(q'+2n−1, 2n−1)`,
//! * the pigeonhole consequence: some advice assignment is shared by
//!   `P/Q` constructions, and Lemma 2.1 turns that into a message bound.

/// `log2(n!)`, exact summation (fast up to a few million; callers in this
/// crate stay far below).
pub fn log2_factorial(n: u64) -> f64 {
    (2..=n).map(|i| (i as f64).log2()).sum()
}

/// `log2( C(a, b) )`; `0` when `b > a` is treated as minus infinity.
///
/// # Panics
///
/// Panics if `b > a` (the proofs never need it).
pub fn log2_binomial(a: u64, b: u64) -> f64 {
    assert!(b <= a, "C({a},{b}) undefined here");
    let b = b.min(a - b);
    // Σ log2((a-b+i)/i), numerically stable for the sizes we use.
    (1..=b)
        .map(|i| ((a - b + i) as f64).log2() - (i as f64).log2())
        .sum()
}

/// Claim 2.1: for large enough `a` and `b`,
/// `C(a(1+b), a) ≤ (6b)^a`. Returns `(log2 lhs, log2 rhs)`.
pub fn claim_2_1_sides(a: u64, b: u64) -> (f64, f64) {
    let lhs = log2_binomial(a * (1 + b), a);
    let rhs = a as f64 * ((6 * b) as f64).log2();
    (lhs, rhs)
}

/// `log2 Q` for an oracle of size at most `q` bits on `N`-node graphs:
/// `Q = Σ_{q'=0}^{q} 2^{q'}·C(q'+N−1, N−1)`, bounded above (as in the
/// proof) by `(q+1)·2^q·C(q+N, N)` — we return the log2 of that upper
/// bound, which is what the theorem uses.
pub fn log2_oracle_outputs(q: u64, nodes: u64) -> f64 {
    ((q + 1) as f64).log2() + q as f64 + log2_binomial(q + nodes, nodes)
}

/// Theorem 2.2 quantities for a given `n` (the construction has `2n`
/// nodes) and advice-size coefficient `α` (oracle size `q = α·2n·log2(2n)`).
#[derive(Debug, Clone, Copy)]
pub struct WakeupBound {
    /// `n` (half the construction's node count).
    pub n: u64,
    /// The advice coefficient `α < 1/2`.
    pub alpha: f64,
    /// `log2 P`: `P = n!·C(C(n,2), n)` distinct graphs `G_{n,S}`.
    pub log2_p: f64,
    /// `log2 Q` (upper bound) for oracle size `q = α·2n·log2(2n)`.
    pub log2_q: f64,
    /// The oracle size `q` itself, in bits.
    pub q_bits: f64,
    /// Implied message lower bound:
    /// `log2(P/Q) − log2(n!) = log2 P − log2 Q − log2 n!` (Lemma 2.1 with
    /// `|X| = n`), clamped at 0.
    pub message_bound: f64,
}

/// Computes the Theorem 2.2 table row for `(n, α)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn wakeup_bound(n: u64, alpha: f64) -> WakeupBound {
    assert!(n >= 2, "need n >= 2");
    let edges = n * (n - 1) / 2;
    let log2_p = log2_factorial(n) + log2_binomial(edges, n.min(edges));
    let q_bits = alpha * (2 * n) as f64 * ((2 * n) as f64).log2();
    let log2_q = log2_oracle_outputs(q_bits.floor() as u64, 2 * n);
    let message_bound = (log2_p - log2_q - log2_factorial(n)).max(0.0);
    WakeupBound {
        n,
        alpha,
        log2_p,
        log2_q,
        q_bits,
        message_bound,
    }
}

/// The paper's closed-form version of the Theorem 2.2 message bound:
/// `(1 − 2β)·n·log2(n/2)` with `β = 1/4 + α/2`.
pub fn wakeup_bound_closed_form(n: u64, alpha: f64) -> f64 {
    let beta = 0.25 + alpha / 2.0;
    ((1.0 - 2.0 * beta) * n as f64 * (n as f64 / 2.0).log2()).max(0.0)
}

/// Remark after Theorem 2.2: subdividing `c·n` edges instead of `n` lifts
/// the advice-coefficient threshold from `1/2` to `c/(c+1)`.
pub fn wakeup_threshold(c: u64) -> f64 {
    c as f64 / (c + 1) as f64
}

/// Asymptotic `log2 C(a, b)` for `b ≪ a`, via the standard sandwich
/// `(a/b)^b ≤ C(a,b) ≤ (a·e/b)^b`; returns the *lower* estimate
/// `b·log2(a/b)` so bounds built on it stay valid lower bounds.
pub fn log2_binomial_lower_approx(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        return 0.0;
    }
    b * (a / b).log2()
}

/// Asymptotic `log2 C(a, b)` upper estimate `b·log2(a·e/b)`; used for the
/// `Q` side so the overall message bound stays a valid lower bound.
pub fn log2_binomial_upper_approx(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        return 0.0;
    }
    b * (a * std::f64::consts::E / b).log2()
}

/// Generalized Theorem 2.2 counting with `c·n` subdivided edges (the
/// remark after Theorem 2.2): implied message bound for oracle size
/// `q = α·(c+1)n·log2((c+1)n)`, in *asymptotic* arithmetic (valid lower
/// bound: `P` uses the binomial lower estimate, `Q` the upper one).
///
/// `n` is an `f64` because the threshold `c/(c+1)` only bites at sizes far
/// beyond exact summation (e.g. `n ≈ 2^60` for `c = 3, α = 0.6`): the
/// lower-order `n·log log n` term in `Q` dominates until `log n` is large.
/// Positive for `α < c/(c+1)` and `n` large enough.
pub fn wakeup_bound_subdivisions_approx(n: f64, c: u64, alpha: f64) -> f64 {
    assert!(c >= 1 && n >= 2.0, "need c >= 1, n >= 2");
    let c = c as f64;
    let hidden = c * n; // |X|
    let edges = n * (n - 1.0) / 2.0;
    if hidden > edges {
        return 0.0;
    }
    let nodes = (c + 1.0) * n;
    // messages ≥ log2 C(edges, cn) − log2 Q (the (cn)! cancels).
    let log2_p_part = log2_binomial_lower_approx(edges, hidden);
    let q = alpha * nodes * nodes.log2();
    let log2_q = (q + 1.0).log2() + q + log2_binomial_upper_approx(q + nodes, nodes);
    (log2_p_part - log2_q).max(0.0)
}

/// Theorem 3.2 quantities for `(n, k)`: broadcast on `G_{n,S,C}` with an
/// oracle of size `q = n/(2k)` bits.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastBound {
    /// Base complete-graph size (construction has `2n` nodes when `k | n`).
    pub n: u64,
    /// Clique size.
    pub k: u64,
    /// `log2 P'` from Eq. (6): `P' = C(C(n,2) − 3n/4k, n/4k)`.
    pub log2_p_prime: f64,
    /// `log2 Q` from Eq. (7): oracle outputs for `q = n/2k` on the gadget
    /// family.
    pub log2_q: f64,
    /// Oracle size `q = n/(2k)` bits.
    pub q_bits: f64,
    /// Implied message bound `log2(P'/Q)` (Lemma 2.1 over
    /// `|I| = |X|!·P'/Q` instances divided by `|X|!`), clamped at 0.
    pub message_bound: f64,
    /// The target the proof compares against: `n(k−1)/8`.
    pub claim_target: f64,
}

/// Computes the Theorem 3.2 / Claim 3.3 table row for `(n, k)`.
///
/// # Panics
///
/// Panics if `k < 2` or `4k` does not divide `n` (the paper's setting).
pub fn broadcast_bound(n: u64, k: u64) -> BroadcastBound {
    assert!(k >= 2, "need k >= 2");
    assert!(n.is_multiple_of(4 * k), "need 4k | n");
    let x = n / (4 * k);
    let y = 3 * n / (4 * k);
    let edges = n * (n - 1) / 2;
    let log2_p_prime = log2_binomial(edges - y, x);
    let q_bits = (n / (2 * k)) as f64;
    // The gadget graphs have 2n nodes.
    let log2_q = log2_oracle_outputs(q_bits as u64, 2 * n);
    let message_bound = (log2_p_prime - log2_q).max(0.0);
    BroadcastBound {
        n,
        k,
        log2_p_prime,
        log2_q,
        q_bits,
        message_bound,
        claim_target: n as f64 * (k - 1) as f64 / 8.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_factorial_small_values() {
        assert_eq!(log2_factorial(0), 0.0);
        assert_eq!(log2_factorial(1), 0.0);
        assert!((log2_factorial(5) - 120f64.log2()).abs() < 1e-12);
        assert!((log2_factorial(10) - 3628800f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn log2_binomial_matches_pascal() {
        for a in 0..20u64 {
            for b in 0..=a {
                let exact: f64 = {
                    // Pascal row computed exactly in u128.
                    let mut c: u128 = 1;
                    for i in 0..b {
                        c = c * (a - i) as u128 / (i + 1) as u128;
                    }
                    (c as f64).log2()
                };
                assert!((log2_binomial(a, b) - exact).abs() < 1e-9, "C({a},{b})");
            }
        }
    }

    #[test]
    fn claim_2_1_holds_for_large_parameters() {
        // The claim is asymptotic; check it at the scales the proof uses.
        for a in [64u64, 256, 1024] {
            for b in [8u64, 16, 64] {
                let (lhs, rhs) = claim_2_1_sides(a, b);
                assert!(lhs <= rhs, "a={a} b={b}: {lhs} > {rhs}");
            }
        }
    }

    #[test]
    fn oracle_outputs_upper_bounds_exact_sum_small() {
        // Exact Q = Σ 2^{q'} C(q'+N−1, N−1) for tiny parameters.
        let (q, nodes) = (6u64, 4u64);
        let exact: f64 = {
            let mut total = 0f64;
            for qp in 0..=q {
                let mut c: u128 = 1;
                let (a, b) = (qp + nodes - 1, nodes - 1);
                for i in 0..b {
                    c = c * (a - i) as u128 / (i + 1) as u128;
                }
                total += 2f64.powi(qp as i32) * c as f64;
            }
            total.log2()
        };
        assert!(log2_oracle_outputs(q, nodes) >= exact);
    }

    #[test]
    fn wakeup_bound_positive_and_growing_below_half() {
        // The pigeonhole count turns positive once n is large enough for
        // the paper's "for n large enough" (≈ 2^13 at α = 0.1).
        let mut prev = 0.0;
        for n in [1u64 << 13, 1 << 14, 1 << 15, 1 << 16] {
            let b = wakeup_bound(n, 0.1);
            assert!(b.message_bound > 0.0, "n={n}");
            assert!(b.message_bound > prev, "n={n} not growing");
            prev = b.message_bound;
        }
    }

    #[test]
    fn wakeup_bound_negative_regime_below_asymptotic_onset() {
        // Below the onset the count proves nothing — the bound clamps to 0.
        // (At α = 0.25 the onset is ≈ 2^15.)
        assert_eq!(wakeup_bound(1 << 12, 0.25).message_bound, 0.0);
        assert!(wakeup_bound(1 << 15, 0.25).message_bound > 0.0);
    }

    #[test]
    fn wakeup_bound_scales_like_n_log_n() {
        // bound(2n)/bound(n) ≈ 2·log(2n)/log(n), slightly above 2.
        let b1 = wakeup_bound(1 << 16, 0.1).message_bound;
        let b2 = wakeup_bound(1 << 17, 0.1).message_bound;
        let ratio = b2 / b1;
        assert!(ratio > 2.0 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn wakeup_bound_vanishes_for_large_alpha() {
        // Well above the 1/2 threshold the pigeonhole argument yields
        // nothing.
        let b = wakeup_bound(1 << 15, 0.9);
        assert_eq!(b.message_bound, 0.0);
    }

    #[test]
    fn closed_form_overshoots_exact_count_at_finite_n() {
        // The paper's closed form (1−2β)·n·log(n/2) relies on Eq. (4),
        // which only kicks in for very large n; at computable sizes the
        // exact pigeonhole count is positive but smaller, and the gap
        // narrows as n grows.
        let mut prev_ratio = f64::INFINITY;
        for n in [1u64 << 15, 1 << 16, 1 << 17, 1 << 18] {
            let exact = wakeup_bound(n, 0.25).message_bound;
            let closed = wakeup_bound_closed_form(n, 0.25);
            assert!(exact > 0.0 && closed > exact, "n={n}");
            let ratio = closed / exact;
            assert!(ratio < prev_ratio, "gap not narrowing at n={n}");
            prev_ratio = ratio;
        }
    }

    #[test]
    fn threshold_remark_values() {
        assert!((wakeup_threshold(1) - 0.5).abs() < 1e-12);
        assert!((wakeup_threshold(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((wakeup_threshold(4) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn more_subdivisions_tolerate_more_advice() {
        // With c = 3 the threshold is 3/4, so advice coefficient 0.6 still
        // yields a positive bound for astronomically large n, while c = 1
        // (threshold 1/2) yields nothing at any size.
        let n = (2.0f64).powi(70);
        assert_eq!(wakeup_bound_subdivisions_approx(n, 1, 0.6), 0.0);
        assert!(wakeup_bound_subdivisions_approx(n, 3, 0.6) > 0.0);
        // And at the same α below 1/2, both are positive.
        assert!(wakeup_bound_subdivisions_approx(n, 1, 0.3) > 0.0);
    }

    #[test]
    fn subdivision_approx_consistent_with_exact_at_c1() {
        // The c = 1 approximate bound must stay below the exact count
        // (both sides of the sandwich are conservative) but within the
        // same order of magnitude once positive.
        let n = 1u64 << 17;
        let exact = wakeup_bound(n, 0.1).message_bound;
        let approx = wakeup_bound_subdivisions_approx(n as f64, 1, 0.1);
        assert!(
            approx > 0.0 && approx <= exact,
            "approx {approx} exact {exact}"
        );
        assert!(approx >= exact / 4.0, "approx {approx} ≪ exact {exact}");
    }

    #[test]
    fn broadcast_bound_positive_and_meets_claim_target() {
        // Claim 3.3 requires k ≤ √(log n): at k = 4 that means n ≥ 2^16,
        // and indeed the count meets n(k−1)/8 exactly from there on.
        for (n, k) in [(1u64 << 16, 4u64), (1 << 18, 4)] {
            let b = broadcast_bound(n, k);
            assert!(b.message_bound > 0.0, "n={n} k={k}");
            assert!(
                b.message_bound >= b.claim_target,
                "n={n} k={k}: {} < target {}",
                b.message_bound,
                b.claim_target
            );
        }
        // Just below the k ≤ √(log n) condition the target is missed …
        let below = broadcast_bound(1 << 14, 4);
        assert!(below.message_bound > 0.0);
        assert!(below.message_bound < below.claim_target);
        // … and a k too large for this n is positive but far from target.
        let wide = broadcast_bound(1 << 18, 8);
        assert!(wide.message_bound > 0.0);
        assert!(wide.message_bound < wide.claim_target);
    }

    #[test]
    fn broadcast_bound_rejects_bad_divisibility() {
        assert!(std::panic::catch_unwind(|| broadcast_bound(100, 8)).is_err());
    }

    #[test]
    fn paper_eq6_lower_bound_on_p_prime() {
        // Eq. (6): P' ≥ (nk/2)^{n/4k}.
        for (n, k) in [(1024u64, 4u64), (4096, 8)] {
            let b = broadcast_bound(n, k);
            let eq6 = (n / (4 * k)) as f64 * ((n * k / 2) as f64).log2();
            assert!(
                b.log2_p_prime >= eq6,
                "n={n} k={k}: {} < {}",
                b.log2_p_prime,
                eq6
            );
        }
    }
}
