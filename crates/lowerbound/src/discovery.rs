//! The edge-discovery problem and probing strategies.
//!
//! An instance is a triple `(n, X, Y)`: `X` a set of *special* edges of
//! `K*_n`, each carrying a distinct label `0..|X|`, and `Y` a disjoint set
//! of edges known in advance not to be special. A scheme knows `n`, `|X|`
//! and `Y`, probes edges one at a time, and learns for each probe either
//! `(e, ℓ) ∈ X` or that `e` is regular. It must *discover* `X` — reach a
//! state where exactly one labeled set is consistent with everything seen.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// An edge of `K*_n`, canonically ordered `u < v` with `u, v < n`.
pub type Edge = (usize, usize);

/// Enumerates every edge of `K*_n` in lexicographic order.
pub fn all_edges(n: usize) -> Vec<Edge> {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push((u, v));
        }
    }
    edges
}

/// What a strategy can see before its next probe.
#[derive(Debug)]
pub struct GameView<'a> {
    /// Number of nodes of the complete graph.
    pub n: usize,
    /// `|X|`: how many specials exist.
    pub x_size: usize,
    /// `Y`: edges known a priori to be regular (never worth probing).
    pub y: &'a BTreeSet<Edge>,
    /// Specials revealed so far, with their labels.
    pub revealed: &'a [(Edge, usize)],
    /// Edges probed and found regular.
    pub regular: &'a BTreeSet<Edge>,
}

impl GameView<'_> {
    /// `true` if `e` has already been probed (either way) or is in `Y`.
    pub fn is_known(&self, e: Edge) -> bool {
        self.y.contains(&e)
            || self.regular.contains(&e)
            || self.revealed.iter().any(|&(r, _)| r == e)
    }

    /// Specials still to be found.
    pub fn remaining_specials(&self) -> usize {
        self.x_size - self.revealed.len()
    }
}

/// A probing strategy: the "communication scheme" side of the game. Must
/// return an edge not yet known (the game runner enforces this).
pub trait DiscoveryStrategy {
    /// Chooses the next edge to probe.
    fn next_probe(&mut self, view: &GameView<'_>) -> Edge;

    /// Short name used in experiment tables.
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

/// Probes edges in lexicographic order.
#[derive(Debug, Default)]
pub struct SequentialStrategy;

impl DiscoveryStrategy for SequentialStrategy {
    fn next_probe(&mut self, view: &GameView<'_>) -> Edge {
        all_edges(view.n)
            .into_iter()
            .find(|&e| !view.is_known(e))
            .expect("game over: no unknown edges")
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// Probes edges in a seeded random order (fixed up front — an oblivious
/// randomized scheme).
#[derive(Debug)]
pub struct RandomStrategy {
    order: Option<Vec<Edge>>,
    seed: u64,
}

impl RandomStrategy {
    /// A strategy whose probe order is a seeded shuffle of all edges.
    pub fn new(seed: u64) -> Self {
        RandomStrategy { order: None, seed }
    }
}

impl DiscoveryStrategy for RandomStrategy {
    fn next_probe(&mut self, view: &GameView<'_>) -> Edge {
        if self.order.is_none() {
            let mut edges = all_edges(view.n);
            let mut rng = StdRng::seed_from_u64(self.seed);
            edges.shuffle(&mut rng);
            self.order = Some(edges);
        }
        self.order
            .as_ref()
            .expect("initialized above")
            .iter()
            .copied()
            .find(|&e| !view.is_known(e))
            .expect("game over: no unknown edges")
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// An adaptive strategy that prefers edges incident to already-revealed
/// specials (a plausible heuristic: specials may cluster) and falls back
/// to lexicographic order.
#[derive(Debug, Default)]
pub struct AdaptiveNeighborStrategy;

impl DiscoveryStrategy for AdaptiveNeighborStrategy {
    fn next_probe(&mut self, view: &GameView<'_>) -> Edge {
        let hot: BTreeSet<usize> = view
            .revealed
            .iter()
            .flat_map(|&((u, v), _)| [u, v])
            .collect();
        let edges = all_edges(view.n);
        edges
            .iter()
            .copied()
            .find(|&(u, v)| !view.is_known((u, v)) && (hot.contains(&u) || hot.contains(&v)))
            .or_else(|| edges.into_iter().find(|&e| !view.is_known(e)))
            .expect("game over: no unknown edges")
    }

    fn name(&self) -> &'static str {
        "adaptive-neighbor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_edges_count_and_order() {
        let e = all_edges(5);
        assert_eq!(e.len(), 10);
        assert_eq!(e[0], (0, 1));
        assert_eq!(e[9], (3, 4));
        for (u, v) in e {
            assert!(u < v && v < 5);
        }
    }

    #[test]
    fn game_view_knowledge_queries() {
        let y: BTreeSet<Edge> = [(0, 1)].into_iter().collect();
        let regular: BTreeSet<Edge> = [(1, 2)].into_iter().collect();
        let revealed = vec![((2, 3), 0)];
        let view = GameView {
            n: 5,
            x_size: 2,
            y: &y,
            revealed: &revealed,
            regular: &regular,
        };
        assert!(view.is_known((0, 1)));
        assert!(view.is_known((1, 2)));
        assert!(view.is_known((2, 3)));
        assert!(!view.is_known((0, 2)));
        assert_eq!(view.remaining_specials(), 1);
    }

    #[test]
    fn sequential_skips_known_edges() {
        let y: BTreeSet<Edge> = [(0, 1), (0, 2)].into_iter().collect();
        let regular = BTreeSet::new();
        let view = GameView {
            n: 4,
            x_size: 1,
            y: &y,
            revealed: &[],
            regular: &regular,
        };
        assert_eq!(SequentialStrategy.next_probe(&view), (0, 3));
    }

    #[test]
    fn random_strategy_is_deterministic_per_seed() {
        let y = BTreeSet::new();
        let regular = BTreeSet::new();
        let view = GameView {
            n: 6,
            x_size: 1,
            y: &y,
            revealed: &[],
            regular: &regular,
        };
        let a = RandomStrategy::new(3).next_probe(&view);
        let b = RandomStrategy::new(3).next_probe(&view);
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_prefers_hot_nodes() {
        let y = BTreeSet::new();
        let regular: BTreeSet<Edge> = [(0, 1)].into_iter().collect();
        let revealed = vec![((3, 4), 0)];
        let view = GameView {
            n: 6,
            x_size: 2,
            y: &y,
            revealed: &revealed,
            regular: &regular,
        };
        let probe = AdaptiveNeighborStrategy.next_probe(&view);
        assert!(probe.0 == 3 || probe.0 == 4 || probe.1 == 3 || probe.1 == 4);
    }
}
