//! The Lemma 2.1 adversary, playable against any
//! [`crate::discovery::DiscoveryStrategy`].
//!
//! The adversary keeps the set of still-*active* instances (all with the
//! same `n`, `|X|`, `Y`). When an edge is probed it partitions the active
//! set into instances where the edge is special vs regular, answers with
//! the larger side, and — if it answers "special" — picks the plurality
//! label so at least a `1/(2(|X|−r))` fraction survives. The proof's
//! invariant
//! `x_{t,r} ≥ |I| · (|X|−r)! / (2^t · |X|!)` is asserted after every probe,
//! and the guaranteed consequence is
//! `probes ≥ log2(|I|) − log2(|X|!)` ([`lemma_2_1_bound`]).

use std::collections::BTreeSet;

use crate::counting::log2_factorial;
use crate::discovery::{all_edges, DiscoveryStrategy, Edge, GameView};

/// One instance of edge discovery: the labeled special set `X` as an
/// ordered tuple — `specials[ℓ]` is the edge with label `ℓ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GameInstance {
    /// `specials[label] = edge`.
    pub specials: Vec<Edge>,
}

impl GameInstance {
    /// Label of `e` in this instance, if special.
    pub fn label_of(&self, e: Edge) -> Option<usize> {
        self.specials.iter().position(|&s| s == e)
    }
}

/// The adversary's answer to a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult {
    /// The probed edge is not special (in any surviving instance).
    Regular,
    /// The probed edge is special and carries this label.
    Special {
        /// The revealed label.
        label: usize,
    },
}

/// The explicit (instance-enumerating) adversary of Lemma 2.1.
#[derive(Debug, Clone)]
pub struct ExplicitAdversary {
    active: Vec<GameInstance>,
    initial_count: usize,
    x_size: usize,
    revealed: Vec<(Edge, usize)>,
    probed: BTreeSet<Edge>,
    probes: usize,
}

impl ExplicitAdversary {
    /// Builds the adversary over an instance family. All instances must
    /// have the same `|X|`.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is empty or sizes differ.
    pub fn new(instances: Vec<GameInstance>) -> Self {
        assert!(!instances.is_empty(), "need at least one instance");
        let x_size = instances[0].specials.len();
        assert!(
            instances.iter().all(|i| i.specials.len() == x_size),
            "all instances must have the same |X|"
        );
        ExplicitAdversary {
            initial_count: instances.len(),
            active: instances,
            x_size,
            revealed: Vec::new(),
            probed: BTreeSet::new(),
            probes: 0,
        }
    }

    /// Number of still-active instances.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// `|X|` of the family.
    pub fn x_size(&self) -> usize {
        self.x_size
    }

    /// Specials revealed so far.
    pub fn revealed(&self) -> &[(Edge, usize)] {
        &self.revealed
    }

    /// Probes answered so far (`t`).
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// The game is settled when one instance remains active and all its
    /// specials are revealed.
    pub fn is_settled(&self) -> bool {
        self.active.len() == 1 && self.revealed.len() == self.x_size
    }

    /// Answers a probe with the majority side, maintaining the proof's
    /// invariant.
    ///
    /// # Panics
    ///
    /// Panics if `e` was probed before (schemes gain nothing by repeating
    /// a probe, and the proof charges each edge once).
    pub fn respond(&mut self, e: Edge) -> ProbeResult {
        assert!(self.probed.insert(e), "edge {e:?} probed twice");
        self.probes += 1;
        let (special, regular): (Vec<GameInstance>, Vec<GameInstance>) = self
            .active
            .drain(..)
            .partition(|inst| inst.label_of(e).is_some());
        if special.len() >= regular.len() {
            // Plurality label among the special side.
            let r = self.revealed.len();
            let mut counts = vec![0usize; self.x_size];
            for inst in &special {
                counts[inst.label_of(e).expect("partitioned special")] += 1;
            }
            let label = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(l, _)| l)
                .expect("x_size > 0");
            self.active = special
                .into_iter()
                .filter(|inst| inst.label_of(e) == Some(label))
                .collect();
            // Invariant: the plurality class holds ≥ |J|/(2(|X|−r)).
            debug_assert!(
                self.active.len() * 2 * (self.x_size - r) >= counts.iter().sum::<usize>()
            );
            self.revealed.push((e, label));
            ProbeResult::Special { label }
        } else {
            self.active = regular;
            ProbeResult::Regular
        }
    }

    /// The proof's lower bound on probes for this family:
    /// `log2(|I|) − log2(|X|!)`.
    pub fn lemma_bound(&self) -> f64 {
        lemma_2_1_bound(self.initial_count as f64, self.x_size)
    }

    /// The invariant mass bound after `t` probes with `r` specials
    /// revealed: `|I| · (|X|−r)! / (2^t · |X|!)` in log2.
    pub fn invariant_log2_mass(&self) -> f64 {
        (self.initial_count as f64).log2()
            + log2_factorial((self.x_size - self.revealed.len()) as u64)
            - self.probes as f64
            - log2_factorial(self.x_size as u64)
    }
}

/// Lemma 2.1: any scheme needs at least `log2(instances) − log2(|X|!)`
/// probes against the adversary.
pub fn lemma_2_1_bound(instance_count: f64, x_size: usize) -> f64 {
    instance_count.log2() - log2_factorial(x_size as u64)
}

/// The result of a played-out game.
#[derive(Debug, Clone)]
pub struct GameResult {
    /// Probes the strategy needed.
    pub probes: usize,
    /// The Lemma 2.1 lower bound for the family.
    pub bound: f64,
    /// The discovered specials, in label order.
    pub discovered: Vec<Edge>,
}

/// Plays `strategy` against the adversary over the given instance family
/// until the game settles.
///
/// # Panics
///
/// Panics if the strategy probes a known edge or the probe budget
/// (`edges of K*_n`) is exhausted without settling — both indicate a buggy
/// strategy, not a valid outcome.
pub fn play(
    n: usize,
    y: &BTreeSet<Edge>,
    mut adversary: ExplicitAdversary,
    strategy: &mut dyn DiscoveryStrategy,
) -> GameResult {
    let mut regular: BTreeSet<Edge> = BTreeSet::new();
    let budget = all_edges(n).len();
    let x_size = adversary.x_size();
    while !adversary.is_settled() {
        assert!(
            adversary.probes() <= budget,
            "strategy exhausted every edge without settling"
        );
        let revealed = adversary.revealed().to_vec();
        let view = GameView {
            n,
            x_size,
            y,
            revealed: &revealed,
            regular: &regular,
        };
        let probe = strategy.next_probe(&view);
        assert!(!view.is_known(probe), "strategy repeated probe {probe:?}");
        assert!(!y.contains(&probe), "strategy probed a Y edge");
        match adversary.respond(probe) {
            ProbeResult::Regular => {
                regular.insert(probe);
            }
            ProbeResult::Special { .. } => {}
        }
        // Proof invariant: active mass never drops below the bound.
        debug_assert!(
            (adversary.active_count() as f64).log2() >= adversary.invariant_log2_mass() - 1e-9,
            "invariant violated"
        );
    }
    let mut discovered: Vec<(Edge, usize)> = adversary.revealed().to_vec();
    discovered.sort_by_key(|&(_, l)| l);
    GameResult {
        probes: adversary.probes(),
        bound: adversary.lemma_bound(),
        discovered: discovered.into_iter().map(|(e, _)| e).collect(),
    }
}

/// Builds the full instance family: every ordered tuple of `x_size`
/// distinct edges from `pool` (labels = tuple positions). `|I| =
/// |pool|·(|pool|−1)···(|pool|−x_size+1)`.
///
/// # Panics
///
/// Panics if `x_size > pool.len()` or `x_size == 0`.
pub fn all_ordered_instances(pool: &[Edge], x_size: usize) -> Vec<GameInstance> {
    assert!(x_size >= 1 && x_size <= pool.len(), "bad x_size");
    let mut out = Vec::new();
    let mut current: Vec<Edge> = Vec::with_capacity(x_size);
    fn recurse(pool: &[Edge], x_size: usize, current: &mut Vec<Edge>, out: &mut Vec<GameInstance>) {
        if current.len() == x_size {
            out.push(GameInstance {
                specials: current.clone(),
            });
            return;
        }
        for &e in pool {
            if !current.contains(&e) {
                current.push(e);
                recurse(pool, x_size, current, out);
                current.pop();
            }
        }
    }
    recurse(pool, x_size, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{RandomStrategy, SequentialStrategy};

    #[test]
    fn instance_family_size_is_falling_factorial() {
        let pool = all_edges(4); // 6 edges
        assert_eq!(all_ordered_instances(&pool, 1).len(), 6);
        assert_eq!(all_ordered_instances(&pool, 2).len(), 30);
        assert_eq!(all_ordered_instances(&pool, 3).len(), 120);
    }

    #[test]
    fn adversary_settles_and_respects_bound_sequential() {
        let n = 5;
        let pool = all_edges(n);
        for x_size in [1usize, 2] {
            let family = all_ordered_instances(&pool, x_size);
            let adv = ExplicitAdversary::new(family.clone());
            let result = play(n, &BTreeSet::new(), adv, &mut SequentialStrategy);
            assert!(
                (result.probes as f64) >= result.bound,
                "x={x_size}: {} < {}",
                result.probes,
                result.bound
            );
            assert_eq!(result.discovered.len(), x_size);
        }
    }

    #[test]
    fn adversary_settles_and_respects_bound_random() {
        let n = 5;
        let pool = all_edges(n);
        let family = all_ordered_instances(&pool, 2);
        for seed in 0..5 {
            let adv = ExplicitAdversary::new(family.clone());
            let result = play(n, &BTreeSet::new(), adv, &mut RandomStrategy::new(seed));
            assert!((result.probes as f64) >= result.bound, "seed {seed}");
        }
    }

    #[test]
    fn adversary_forces_nearly_all_edges_for_single_special() {
        // With |X|=1 over all 10 edges of K*_5, |I| = 10, bound = log2 10
        // ≈ 3.3; the majority adversary actually answers "regular" while
        // the regular side is at least as large, forcing ≥ 9 probes.
        let n = 5;
        let pool = all_edges(n);
        let family = all_ordered_instances(&pool, 1);
        let adv = ExplicitAdversary::new(family);
        let result = play(n, &BTreeSet::new(), adv, &mut SequentialStrategy);
        assert!(result.probes >= 9, "only {} probes", result.probes);
    }

    #[test]
    fn y_edges_shrink_the_pool() {
        let n = 5;
        let y: BTreeSet<Edge> = [(0, 1), (0, 2), (0, 3)].into_iter().collect();
        let pool: Vec<Edge> = all_edges(n)
            .into_iter()
            .filter(|e| !y.contains(e))
            .collect();
        let family = all_ordered_instances(&pool, 2);
        let adv = ExplicitAdversary::new(family);
        let result = play(n, &y, adv, &mut SequentialStrategy);
        assert!((result.probes as f64) >= result.bound);
        for e in &result.discovered {
            assert!(!y.contains(e), "discovered a Y edge");
        }
    }

    #[test]
    fn respond_rejects_duplicate_probe() {
        let pool = all_edges(4);
        let mut adv = ExplicitAdversary::new(all_ordered_instances(&pool, 1));
        let _ = adv.respond((0, 1));
        let result = std::panic::catch_unwind(move || adv.respond((0, 1)));
        assert!(result.is_err());
    }

    #[test]
    fn invariant_mass_bound_consistent() {
        let pool = all_edges(5);
        let mut adv = ExplicitAdversary::new(all_ordered_instances(&pool, 2));
        for e in all_edges(5) {
            if adv.is_settled() {
                break;
            }
            if adv.revealed().iter().any(|&(r, _)| r == e) {
                continue;
            }
            let _ = adv.respond(e);
            assert!((adv.active_count() as f64).log2() >= adv.invariant_log2_mass() - 1e-9);
        }
    }

    #[test]
    fn lemma_bound_formula() {
        // |I| = 90, |X| = 2: bound = log2(90) − log2(2) = log2(45).
        let b = lemma_2_1_bound(90.0, 2);
        assert!((b - 45f64.log2()).abs() < 1e-12);
    }
}
