//! Lower-bound machinery: the edge-discovery problem, the Lemma 2.1
//! adversary, the counting bounds behind Theorems 2.2 and 3.2, and the
//! truncated-advice experiments.
//!
//! The paper's lower bounds are information-theoretic; this crate makes
//! them *executable*:
//!
//! * [`discovery`] — the auxiliary *edge discovery* problem: a scheme
//!   probes edges of `K*_n` and is told, per probe, whether the edge is
//!   *special* (and its label) or *regular*; it must pin down the whole
//!   labeled special set `X`.
//! * [`adversary`] — the proof's adversary, playable against any strategy:
//!   it maintains the set of still-consistent instances and answers each
//!   probe with the majority half (splitting special answers by the
//!   plurality label), guaranteeing at least `log2(|I| / |X|!)` probes.
//! * [`counting`] — Claim 2.1 and the `P`/`Q` calculations of both
//!   theorems, in exact log2 arithmetic, so the implied message bounds can
//!   be tabulated for concrete `n`, `α`, `k`.
//! * [`truncation`] — experiment T6/F3: wakeup on the subdivided graphs
//!   `G_{n,S}` when the spanning-tree oracle is cut to a bit budget, with a
//!   flooding fallback; measures the knowledge → message-complexity
//!   trade-off curve the lower bound predicts.

#![warn(missing_docs)]

pub mod adversary;
pub mod counting;
pub mod discovery;
pub mod symbolic;
pub mod truncation;

pub use adversary::{ExplicitAdversary, GameInstance, GameResult, ProbeResult};
pub use discovery::{DiscoveryStrategy, Edge, GameView};
pub use symbolic::{play_symbolic, SymbolicAdversary};
