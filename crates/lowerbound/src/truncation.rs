//! Experiment T6/F3: the knowledge → message-complexity trade-off.
//!
//! Theorem 2.2 says no `o(n log n)`-bit oracle supports linear-message
//! wakeup on the subdivided graphs `G_{n,S}`. This module measures the
//! *constructive* side of that trade-off: wakeup with a spanning-tree
//! oracle whose advice is cut to a bit budget, where nodes whose advice was
//! cut fall back to flooding. The scheme always completes, and the message
//! count interpolates between `n − 1` (full advice) and `Θ(m)` (no advice)
//! as the budget shrinks — the shape the lower bound predicts.

use oraclesize_bits::lists::decode_port_list;
use oraclesize_bits::BitString;
use oraclesize_core::wakeup::SpanningTreeOracle;
use oraclesize_graph::{NodeId, Port, PortGraph};
use oraclesize_sim::protocol::{Message, NodeBehavior, NodeView, Outgoing, Protocol};
use oraclesize_sim::{advice_size, Oracle, RunMetrics, SimConfig, SimError};

/// Cuts an inner oracle to a global bit budget by *whole strings*,
/// cheapest-first: strings are kept in ascending order of length while the
/// budget lasts (advising as many nodes as possible per bit), the rest
/// replaced by a 1-bit "withheld" sentinel. A budgeted oracle is free to
/// choose what to emit, so the greedy choice is a legitimate — and
/// monotone — point on the knowledge/efficiency curve.
///
/// (Contrast with [`TruncatedOracle`](oraclesize_core::oracle::TruncatedOracle),
/// which cuts mid-string and is used for robustness fuzzing; whole-string
/// cutting keeps each surviving string decodable, which this experiment
/// needs.)
#[derive(Debug, Clone)]
pub struct StringBudgetOracle<O> {
    inner: O,
    budget_bits: u64,
}

impl<O: Oracle> StringBudgetOracle<O> {
    /// Wraps `inner` with a total budget of `budget_bits`.
    pub fn new(inner: O, budget_bits: u64) -> Self {
        StringBudgetOracle { inner, budget_bits }
    }
}

impl<O: Oracle> Oracle for StringBudgetOracle<O> {
    fn advise(&self, g: &PortGraph, source: NodeId) -> Vec<BitString> {
        let full = self.inner.advise(g, source);
        let mut order: Vec<usize> = (0..full.len()).collect();
        order.sort_by_key(|&v| (full[v].len(), v));
        let mut remaining = self.budget_bits;
        let mut keep = vec![false; full.len()];
        for v in order {
            if (full[v].len() as u64) <= remaining {
                remaining -= full[v].len() as u64;
                keep[v] = true;
            }
        }
        full.into_iter()
            .zip(keep)
            .map(|(s, kept)| {
                if kept {
                    s
                } else {
                    // Mark "advice withheld" with the 1-bit sentinel `1`,
                    // which is undecodable as a port list.
                    BitString::from_bits([true])
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "string-budget"
    }
}

/// Wakeup that follows tree advice where present and floods where the
/// advice is missing or undecodable. Always completes (every node's tree
/// parent eventually wakes and either tree-forwards or floods), at a
/// message cost that grows as the budget shrinks.
#[derive(Debug, Clone, Copy, Default)]
pub struct FallbackWakeup;

enum FallbackState {
    /// Valid advice: forward on these child ports once woken.
    Tree { child_ports: Vec<Port>, fired: bool },
    /// No advice: flood all ports (except the waking one) once woken.
    Flood { degree: usize, fired: bool },
}

impl FallbackState {
    fn fire(&mut self, arrival: Option<Port>) -> Vec<Outgoing> {
        match self {
            FallbackState::Tree { child_ports, fired } => {
                if *fired {
                    return Vec::new();
                }
                *fired = true;
                child_ports
                    .iter()
                    .map(|&p| Outgoing::new(p, Message::empty()))
                    .collect()
            }
            FallbackState::Flood { degree, fired } => {
                if *fired {
                    return Vec::new();
                }
                *fired = true;
                (0..*degree)
                    .filter(|&p| Some(p) != arrival)
                    .map(|p| Outgoing::new(p, Message::empty()))
                    .collect()
            }
        }
    }
}

impl NodeBehavior for FallbackState {
    fn on_start(&mut self) -> Vec<Outgoing> {
        Vec::new()
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        if message.carries_source {
            self.fire(Some(port))
        } else {
            Vec::new()
        }
    }
}

/// Wrapper so the source fires spontaneously.
struct FallbackSource {
    inner: FallbackState,
}

impl NodeBehavior for FallbackSource {
    fn on_start(&mut self) -> Vec<Outgoing> {
        self.inner.fire(None)
    }

    fn on_receive(&mut self, port: Port, message: Message) -> Vec<Outgoing> {
        self.inner.on_receive(port, message)
    }
}

impl Protocol for FallbackWakeup {
    fn create(&self, view: NodeView) -> Box<dyn NodeBehavior> {
        let state = match decode_port_list(&view.advice) {
            Some(ports) if ports.iter().all(|&p| (p as usize) < view.degree) => {
                FallbackState::Tree {
                    child_ports: ports.into_iter().map(|p| p as usize).collect(),
                    fired: false,
                }
            }
            _ => FallbackState::Flood {
                degree: view.degree,
                fired: false,
            },
        };
        if view.is_source {
            Box::new(FallbackSource { inner: state })
        } else {
            Box::new(state)
        }
    }

    fn name(&self) -> &'static str {
        "fallback-wakeup"
    }
}

/// One point on the trade-off curve.
#[derive(Debug, Clone, Copy)]
pub struct TradeoffPoint {
    /// Requested advice budget in bits.
    pub budget_bits: u64,
    /// Advice actually delivered (≤ budget + 1-bit sentinels).
    pub oracle_bits: u64,
    /// Execution metrics (all nodes informed — the protocol guarantees it).
    pub metrics: RunMetrics,
}

/// Runs the budgeted-wakeup experiment for each budget, on `g` from
/// `source`.
///
/// # Errors
///
/// Propagates engine errors (none are expected for these protocols).
pub fn tradeoff_curve(
    g: &PortGraph,
    source: NodeId,
    budgets: &[u64],
    tree_seed: u64,
) -> Result<Vec<TradeoffPoint>, SimError> {
    let inner = SpanningTreeOracle {
        seed: tree_seed,
        ..Default::default()
    };
    budgets
        .iter()
        .map(|&budget_bits| {
            let oracle = StringBudgetOracle::new(inner, budget_bits);
            let advice = oracle.advise(g, source);
            let oracle_bits = advice_size(&advice);
            let outcome = oraclesize_sim::engine::run(
                g,
                source,
                &advice,
                &FallbackWakeup,
                &SimConfig::wakeup(),
            )?;
            debug_assert!(outcome.all_informed(), "fallback wakeup must complete");
            Ok(TradeoffPoint {
                budget_bits,
                oracle_bits,
                metrics: outcome.metrics,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oraclesize_core::execute;
    use oraclesize_graph::{families, gadgets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_budget_gives_n_minus_1_messages() {
        let mut rng = StdRng::seed_from_u64(41);
        let (g, _) = gadgets::random_subdivided_complete(16, 16, &mut rng);
        let points = tradeoff_curve(&g, 0, &[u64::MAX], 0).unwrap();
        assert_eq!(points[0].metrics.messages, g.num_nodes() as u64 - 1);
    }

    #[test]
    fn zero_budget_degenerates_to_flooding() {
        let mut rng = StdRng::seed_from_u64(42);
        let (g, _) = gadgets::random_subdivided_complete(12, 12, &mut rng);
        let points = tradeoff_curve(&g, 0, &[0], 0).unwrap();
        // Flooding costs Θ(m) ≫ n on the dense construction.
        assert!(
            points[0].metrics.messages as usize > 2 * g.num_nodes(),
            "{} messages",
            points[0].metrics.messages
        );
    }

    #[test]
    fn messages_decrease_monotonically_in_budget_on_average() {
        let mut rng = StdRng::seed_from_u64(43);
        let (g, _) = gadgets::random_subdivided_complete(16, 16, &mut rng);
        let full = advice_size(&SpanningTreeOracle::default().advise(&g, 0));
        let budgets: Vec<u64> = [0.0, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .map(|f| (full as f64 * f) as u64)
            .collect();
        let points = tradeoff_curve(&g, 0, &budgets, 0).unwrap();
        let msgs: Vec<u64> = points.iter().map(|p| p.metrics.messages).collect();
        assert!(
            msgs.first().unwrap() > msgs.last().unwrap(),
            "no budget → full budget should reduce messages: {msgs:?}"
        );
        // Ends anchored at flooding and tree costs.
        assert_eq!(*msgs.last().unwrap(), g.num_nodes() as u64 - 1);
    }

    #[test]
    fn fallback_always_completes() {
        let mut rng = StdRng::seed_from_u64(44);
        for fam in families::Family::ALL {
            let g = fam.build(24, &mut rng);
            for budget in [0u64, 16, 64, 1024] {
                let oracle = StringBudgetOracle::new(SpanningTreeOracle::default(), budget);
                let run = execute(&g, 0, &oracle, &FallbackWakeup, &SimConfig::wakeup()).unwrap();
                assert!(run.outcome.all_informed(), "{} budget={budget}", fam.name());
            }
        }
    }

    #[test]
    fn sentinel_marks_withheld_advice() {
        let g = families::star(6);
        let oracle = StringBudgetOracle::new(SpanningTreeOracle::default(), 0);
        let advice = oracle.advise(&g, 0);
        // Hub's advice withheld → 1-bit sentinel; leaves were empty anyway
        // but also get the sentinel once the budget is blown.
        assert_eq!(advice[0].len(), 1);
        assert!(decode_port_list(&advice[0]).is_none());
    }

    #[test]
    fn budget_oracle_never_exceeds_budget_by_more_than_sentinels() {
        let g = families::complete_rotational(20);
        let full = advice_size(&SpanningTreeOracle::default().advise(&g, 0));
        for budget in [0u64, full / 3, full] {
            let oracle = StringBudgetOracle::new(SpanningTreeOracle::default(), budget);
            let advice = oracle.advise(&g, 0);
            assert!(advice_size(&advice) <= budget + g.num_nodes() as u64);
        }
    }
}
