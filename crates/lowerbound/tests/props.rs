//! Property-based tests for the lower-bound machinery.

use std::collections::BTreeSet;

use oraclesize_lowerbound::adversary::{
    all_ordered_instances, lemma_2_1_bound, play, ExplicitAdversary,
};
use oraclesize_lowerbound::counting::{
    broadcast_bound, claim_2_1_sides, log2_binomial, log2_factorial, wakeup_bound,
};
use oraclesize_lowerbound::discovery::{all_edges, RandomStrategy, SequentialStrategy};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adversary_bound_holds_for_random_strategies(
        n in 4usize..7,
        x_size in 1usize..3,
        seed in any::<u64>(),
    ) {
        let pool = all_edges(n);
        prop_assume!(x_size <= pool.len());
        let family = all_ordered_instances(&pool, x_size);
        let result = play(
            n,
            &BTreeSet::new(),
            ExplicitAdversary::new(family.clone()),
            &mut RandomStrategy::new(seed),
        );
        prop_assert!(result.probes as f64 >= result.bound);
        prop_assert_eq!(result.discovered.len(), x_size);
    }

    #[test]
    fn adversary_discovers_a_consistent_instance(
        n in 4usize..7,
        x_size in 1usize..3,
    ) {
        let pool = all_edges(n);
        prop_assume!(x_size <= pool.len());
        let family = all_ordered_instances(&pool, x_size);
        let result = play(
            n,
            &BTreeSet::new(),
            ExplicitAdversary::new(family.clone()),
            &mut SequentialStrategy,
        );
        // The discovered labeled set must be one of the family's instances.
        prop_assert!(
            family.iter().any(|inst| inst.specials == result.discovered),
            "discovered {:?} not in family",
            result.discovered
        );
    }

    #[test]
    fn y_edges_never_discovered(n in 5usize..7, seed in any::<u64>()) {
        let edges = all_edges(n);
        let y: BTreeSet<(usize, usize)> = edges.iter().copied().take(3).collect();
        let pool: Vec<(usize, usize)> =
            edges.into_iter().filter(|e| !y.contains(e)).collect();
        let family = all_ordered_instances(&pool, 2);
        let result = play(
            n,
            &y,
            ExplicitAdversary::new(family),
            &mut RandomStrategy::new(seed),
        );
        for e in &result.discovered {
            prop_assert!(!y.contains(e));
        }
    }

    #[test]
    fn log2_factorial_is_superadditive_and_monotone(a in 0u64..500, b in 0u64..500) {
        let (fa, fb, fab) = (log2_factorial(a), log2_factorial(b), log2_factorial(a + b));
        prop_assert!(fab + 1e-9 >= fa + fb, "log C(a+b,a) must be ≥ 0");
        prop_assert!(log2_factorial(a + 1) + 1e-12 >= fa);
    }

    #[test]
    fn log2_binomial_symmetry_and_pascal(a in 1u64..200, b in 0u64..200) {
        prop_assume!(b <= a);
        let lhs = log2_binomial(a, b);
        prop_assert!((lhs - log2_binomial(a, a - b)).abs() < 1e-9);
        // Pascal: C(a,b) ≤ C(a+1,b).
        prop_assert!(log2_binomial(a + 1, b) + 1e-9 >= lhs);
    }

    #[test]
    fn lemma_bound_monotone_in_family_size(small in 2f64..1e6, factor in 1.1f64..100.0) {
        let x = 3;
        prop_assert!(lemma_2_1_bound(small * factor, x) > lemma_2_1_bound(small, x));
    }

    #[test]
    fn claim_2_1_holds_at_scale(a in 64u64..2000, b in 8u64..64) {
        let (lhs, rhs) = claim_2_1_sides(a, b);
        prop_assert!(lhs <= rhs, "a={a} b={b}");
    }

    #[test]
    fn wakeup_bound_monotone_decreasing_in_alpha(p in 13u32..16, step in 1usize..4) {
        let n = 1u64 << p;
        let alphas = [0.05, 0.15, 0.25, 0.35, 0.45];
        let lo = wakeup_bound(n, alphas[step - 1]).message_bound;
        let hi = wakeup_bound(n, alphas[step]).message_bound;
        prop_assert!(lo + 1e-9 >= hi, "more advice cannot increase the bound");
    }

    #[test]
    fn broadcast_bound_components_finite(p in 4u32..10) {
        let k = 4u64;
        let n = (1u64 << p) * 4 * k; // ensure 4k | n
        let b = broadcast_bound(n, k);
        prop_assert!(b.log2_p_prime.is_finite());
        prop_assert!(b.log2_q.is_finite());
        prop_assert!(b.message_bound >= 0.0);
    }
}
