//! Thin binary wrapper around [`oraclesize::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match oraclesize::cli::parse_args(&args).and_then(|cmd| oraclesize::cli::run_command(&cmd)) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{}", oraclesize::cli::usage());
            std::process::exit(2);
        }
    }
}
