//! Thin binary wrapper around [`oraclesize::cli`].
//!
//! Exit status: `0` healthy, `1` sweep completed but degraded (without
//! `--allow-degraded`), `2` usage or execution errors.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match oraclesize::cli::parse_args(&args)
        .and_then(|cmd| oraclesize::cli::run_command_status(&cmd))
    {
        Ok((report, healthy)) => {
            print!("{report}");
            if !healthy {
                eprintln!("sweep degraded; pass --allow-degraded to tolerate this");
                std::process::exit(1);
            }
        }
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{}", oraclesize::cli::usage());
            std::process::exit(2);
        }
    }
}
