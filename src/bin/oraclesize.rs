//! Thin binary wrapper around [`oraclesize::cli`].
//!
//! Exit status: `0` healthy, `1` sweep completed but degraded (without
//! `--allow-degraded`), `2` usage or execution errors.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // lint:allow(D002): the wall clock lives at the binary edge only —
    // the library never reads it, so reports and artifacts stay
    // deterministic; this rate line is telemetry, not an artifact.
    let started = std::time::Instant::now();
    let parsed = oraclesize::cli::parse_args(&args);
    let sweep_runs = match &parsed {
        Ok(oraclesize::cli::Command::Sweep(a)) => Some(a.runs),
        _ => None,
    };
    match parsed.and_then(|cmd| oraclesize::cli::run_command_status(&cmd)) {
        Ok((report, healthy)) => {
            print!("{report}");
            if let Some(runs) = sweep_runs {
                let secs = started.elapsed().as_secs_f64();
                if secs > 0.0 {
                    println!("rate:         {:.1} runs/sec", runs as f64 / secs);
                }
            }
            if !healthy {
                eprintln!("sweep degraded; pass --allow-degraded to tolerate this");
                std::process::exit(1);
            }
        }
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{}", oraclesize::cli::usage());
            std::process::exit(2);
        }
    }
}
