//! The `oraclesize` command-line tool: run any task on any family and
//! print the knowledge/communication costs.
//!
//! ```text
//! oraclesize run --family complete --n 64 --task broadcast
//! oraclesize run --family random-sparse --n 128 --task election --scheduler lifo
//! oraclesize run --family grid --n 100 --task spanner --stretch 3
//! oraclesize list
//! ```

use std::fmt::Write as _;

use oraclesize_core::broadcast::{LightTreeOracle, SchemeB};
use oraclesize_core::construction::{
    collect_parent_ports, verify_bfs_tree, verify_mst, BfsTreeOracle, DistributedBfs, MstOracle,
    ZeroMessageTree,
};
use oraclesize_core::election::{
    verify_election, AnnouncedLeader, ElectionOracle, FloodMax, HirschbergSinclair,
};
use oraclesize_core::gossip::{decode_gossip_output, GossipOracle, TreeGossip};
use oraclesize_core::oracle::EmptyOracle;
use oraclesize_core::spanner::{collect_port_sets, verify_spanner, SpannerOracle};
use oraclesize_core::wakeup::{SpanningTreeOracle, TreeWakeup};
use oraclesize_core::{execute, OracleRun};
use oraclesize_graph::families::Family;
use oraclesize_sim::protocol::FloodOnce;
use oraclesize_sim::{SchedulerKind, SimConfig, TaskMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The tasks the CLI can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Theorem 3.1: light-tree oracle + Scheme B.
    Broadcast,
    /// Theorem 2.1: spanning-tree oracle + tree wakeup.
    Wakeup,
    /// Oracle-free flooding baseline.
    Flood,
    /// Tree gossip.
    Gossip,
    /// Oracle-assisted leader election.
    Election,
    /// FloodMax election baseline.
    FloodMax,
    /// Hirschberg–Sinclair ring election (cycle family only).
    HsElection,
    /// Zero-message BFS-tree construction.
    Bfs,
    /// Zero-message MST construction.
    Mst,
    /// Flooding-based distributed BFS baseline.
    DistBfs,
    /// Zero-message t-spanner construction (`--stretch`).
    Spanner,
}

impl Task {
    /// Parses a task name.
    pub fn parse(s: &str) -> Option<Task> {
        Some(match s {
            "broadcast" => Task::Broadcast,
            "wakeup" => Task::Wakeup,
            "flood" => Task::Flood,
            "gossip" => Task::Gossip,
            "election" => Task::Election,
            "floodmax" => Task::FloodMax,
            "hs-election" => Task::HsElection,
            "bfs" => Task::Bfs,
            "mst" => Task::Mst,
            "dist-bfs" => Task::DistBfs,
            "spanner" => Task::Spanner,
            _ => return None,
        })
    }

    /// All task names, for `list` and error messages.
    pub const NAMES: [&'static str; 11] = [
        "broadcast",
        "wakeup",
        "flood",
        "gossip",
        "election",
        "floodmax",
        "hs-election",
        "bfs",
        "mst",
        "dist-bfs",
        "spanner",
    ];
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `run …`
    Run(RunArgs),
    /// `list`
    List,
    /// `help` (also the zero-argument default)
    Help,
}

/// Arguments of the `run` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Graph family.
    pub family: Family,
    /// Approximate size.
    pub n: usize,
    /// Task to execute.
    pub task: Task,
    /// Source / root node.
    pub source: usize,
    /// Asynchronous scheduler; `None` = synchronous.
    pub scheduler: Option<SchedulerKind>,
    /// Erase node identities.
    pub anonymous: bool,
    /// RNG seed (graph generation and random scheduling).
    pub seed: u64,
    /// Spanner stretch.
    pub stretch: usize,
}

fn parse_family(s: &str) -> Option<Family> {
    Family::ALL.into_iter().find(|f| f.name() == s)
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// A usage message describing the problem.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("run") => {
            let mut family = Family::RandomSparse;
            let mut n = 64usize;
            let mut task = None;
            let mut source = 0usize;
            let mut scheduler = None;
            let mut anonymous = false;
            let mut seed = 2006u64;
            let mut stretch = 3usize;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--family" => {
                        let v = value("--family")?;
                        family = parse_family(v).ok_or_else(|| format!("unknown family {v:?}"))?;
                    }
                    "--n" => {
                        n = value("--n")?
                            .parse()
                            .map_err(|_| "--n needs an integer".to_string())?;
                    }
                    "--task" => {
                        let v = value("--task")?;
                        task = Some(Task::parse(v).ok_or_else(|| format!("unknown task {v:?}"))?);
                    }
                    "--source" => {
                        source = value("--source")?
                            .parse()
                            .map_err(|_| "--source needs an integer".to_string())?;
                    }
                    "--scheduler" => {
                        let v = value("--scheduler")?;
                        scheduler = Some(match v.as_str() {
                            "fifo" => SchedulerKind::Fifo,
                            "lifo" => SchedulerKind::Lifo,
                            "random" => SchedulerKind::Random { seed },
                            "starve" => SchedulerKind::Starve,
                            other => return Err(format!("unknown scheduler {other:?}")),
                        });
                    }
                    "--anonymous" => anonymous = true,
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|_| "--seed needs an integer".to_string())?;
                    }
                    "--stretch" => {
                        stretch = value("--stretch")?
                            .parse()
                            .map_err(|_| "--stretch needs an integer".to_string())?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let task = task.ok_or("run requires --task".to_string())?;
            Ok(Command::Run(RunArgs {
                family,
                n,
                task,
                source,
                scheduler,
                anonymous,
                seed,
                stretch,
            }))
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

/// The `help` text.
pub fn usage() -> String {
    format!(
        "oraclesize — run oracle-assisted communication tasks (PODC 2006)\n\n\
         USAGE:\n  oraclesize run --task <task> [--family <family>] [--n <size>]\n\
         \x20                [--source <node>] [--scheduler fifo|lifo|random|starve]\n\
         \x20                [--anonymous] [--seed <u64>] [--stretch <t>]\n\
         \x20 oraclesize list\n\n\
         TASKS:    {}\nFAMILIES: {}\n",
        Task::NAMES.join(" "),
        Family::ALL.map(|f| f.name()).join(" ")
    )
}

/// Executes a parsed command and renders its report.
///
/// # Errors
///
/// Engine errors, verification failures, or invalid combinations (e.g.
/// `hs-election` off a cycle).
pub fn run_command(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(usage()),
        Command::List => {
            let mut out = String::new();
            let _ = writeln!(out, "families: {}", Family::ALL.map(|f| f.name()).join(" "));
            let _ = writeln!(out, "tasks:    {}", Task::NAMES.join(" "));
            Ok(out)
        }
        Command::Run(args) => run_task(args),
    }
}

fn run_task(args: &RunArgs) -> Result<String, String> {
    if args.task == Task::HsElection && args.family != Family::Cycle {
        return Err("hs-election requires --family cycle".into());
    }
    let mut rng = StdRng::seed_from_u64(args.seed);
    let g = args.family.build(args.n, &mut rng);
    if args.source >= g.num_nodes() {
        return Err(format!(
            "--source {} out of range (graph has {} nodes)",
            args.source,
            g.num_nodes()
        ));
    }
    let mut config = match args.scheduler {
        Some(kind) => SimConfig::asynchronous(kind),
        None => SimConfig::default(),
    };
    config.anonymous = args.anonymous;
    if matches!(args.task, Task::Wakeup) {
        config.mode = TaskMode::Wakeup;
    }
    if args.anonymous
        && matches!(
            args.task,
            Task::Gossip | Task::Election | Task::FloodMax | Task::HsElection
        )
    {
        return Err("this task needs node identities; drop --anonymous".into());
    }

    let exec = |oracle: &dyn oraclesize_core::Oracle,
                protocol: &dyn oraclesize_sim::Protocol|
     -> Result<OracleRun, String> {
        execute(&g, args.source, oracle, protocol, &config).map_err(|e| e.to_string())
    };

    let (run, verification) = match args.task {
        Task::Broadcast => {
            let r = exec(&LightTreeOracle, &SchemeB)?;
            let v = if r.outcome.all_informed() {
                "all informed"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Wakeup => {
            let r = exec(&SpanningTreeOracle::default(), &TreeWakeup)?;
            let v = if r.outcome.all_informed() {
                "all informed"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Flood => {
            let r = exec(&EmptyOracle, &FloodOnce)?;
            let v = if r.outcome.all_informed() {
                "all informed"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Gossip => {
            let r = exec(&GossipOracle::default(), &TreeGossip)?;
            let complete = r.outcome.outputs.iter().all(|o| {
                o.as_ref()
                    .and_then(decode_gossip_output)
                    .is_some_and(|s| s.len() == g.num_nodes())
            });
            let v = if complete {
                "all nodes know all values"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Election => {
            let r = exec(&ElectionOracle, &AnnouncedLeader)?;
            let leader = verify_election(&g, &r.outcome.outputs, false)?;
            (r, format!("leader {leader} agreed everywhere"))
        }
        Task::FloodMax => {
            let r = exec(&EmptyOracle, &FloodMax)?;
            let leader = verify_election(&g, &r.outcome.outputs, true)?;
            (r, format!("maximum {leader} elected everywhere"))
        }
        Task::HsElection => {
            let r = exec(&EmptyOracle, &HirschbergSinclair)?;
            let leader = verify_election(&g, &r.outcome.outputs, true)?;
            (r, format!("maximum {leader} elected everywhere"))
        }
        Task::Bfs => {
            let r = exec(&BfsTreeOracle, &ZeroMessageTree)?;
            let ports =
                collect_parent_ports(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            verify_bfs_tree(&g, args.source, &ports)?;
            (r, "verified BFS tree".to_string())
        }
        Task::Mst => {
            let r = exec(&MstOracle, &ZeroMessageTree)?;
            let ports =
                collect_parent_ports(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            verify_mst(&g, args.source, &ports)?;
            (r, "verified minimum spanning tree".to_string())
        }
        Task::DistBfs => {
            let r = exec(&EmptyOracle, &DistributedBfs)?;
            let ports =
                collect_parent_ports(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            let v = if args.scheduler.is_none() {
                verify_bfs_tree(&g, args.source, &ports)?;
                "verified BFS tree".to_string()
            } else {
                "spanning tree (async: BFS property not guaranteed)".to_string()
            };
            (r, v)
        }
        Task::Spanner => {
            let r = exec(&SpannerOracle::new(args.stretch.max(1)), &ZeroMessageTree)?;
            let sets = collect_port_sets(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            let edges = verify_spanner(&g, &sets, args.stretch.max(1))?;
            (
                r,
                format!("verified {}-spanner with {edges} edges", args.stretch),
            )
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph:        {} (n = {}, m = {})",
        args.family.name(),
        g.num_nodes(),
        g.num_edges()
    );
    let _ = writeln!(
        out,
        "execution:    {}{}",
        args.scheduler.map_or("synchronous", |k| k.name()),
        if args.anonymous { ", anonymous" } else { "" }
    );
    let _ = writeln!(out, "oracle bits:  {}", run.oracle_bits);
    let _ = writeln!(out, "messages:     {}", run.outcome.metrics.messages);
    let _ = writeln!(out, "payload bits: {}", run.outcome.metrics.payload_bits);
    let _ = writeln!(out, "rounds:       {}", run.outcome.metrics.rounds);
    let _ = writeln!(out, "result:       {verification}");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_help_and_list() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["list"])).unwrap(), Command::List);
        assert!(parse_args(&args(&["bogus"])).is_err());
    }

    #[test]
    fn parse_run_defaults_and_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "broadcast",
            "--family",
            "complete",
            "--n",
            "32",
            "--scheduler",
            "lifo",
            "--anonymous",
            "--seed",
            "7",
        ]))
        .unwrap();
        let Command::Run(a) = cmd else {
            panic!("not run")
        };
        assert_eq!(a.task, Task::Broadcast);
        assert_eq!(a.family, Family::Complete);
        assert_eq!(a.n, 32);
        assert_eq!(a.scheduler, Some(SchedulerKind::Lifo));
        assert!(a.anonymous);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&args(&["run"])).is_err()); // no task
        assert!(parse_args(&args(&["run", "--task", "nope"])).is_err());
        assert!(parse_args(&args(&["run", "--task", "wakeup", "--family", "nope"])).is_err());
        assert!(parse_args(&args(&["run", "--task", "wakeup", "--n"])).is_err());
        assert!(parse_args(&args(&["run", "--task", "wakeup", "--wat"])).is_err());
    }

    #[test]
    fn every_task_runs_and_verifies() {
        for task in Task::NAMES {
            let family = if task == "hs-election" {
                "cycle"
            } else {
                "random-sparse"
            };
            let cmd = parse_args(&args(&[
                "run", "--task", task, "--family", family, "--n", "24",
            ]))
            .unwrap();
            let report = run_command(&cmd).unwrap_or_else(|e| panic!("{task}: {e}"));
            assert!(report.contains("result:"), "{task}");
            assert!(!report.contains("INCOMPLETE"), "{task}");
        }
    }

    #[test]
    fn hs_election_requires_cycle() {
        let cmd = parse_args(&args(&["run", "--task", "hs-election", "--family", "grid"])).unwrap();
        assert!(run_command(&cmd).is_err());
    }

    #[test]
    fn anonymous_labeled_tasks_rejected() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "gossip",
            "--anonymous",
            "--family",
            "cycle",
        ]))
        .unwrap();
        assert!(run_command(&cmd).is_err());
    }

    #[test]
    fn async_runs_work() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "broadcast",
            "--family",
            "hypercube",
            "--n",
            "32",
            "--scheduler",
            "random",
        ]))
        .unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("all informed"));
    }

    #[test]
    fn starve_scheduler_is_exposed() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "broadcast",
            "--family",
            "cycle",
            "--n",
            "16",
            "--scheduler",
            "starve",
        ]))
        .unwrap();
        let Command::Run(ref a) = cmd else {
            panic!("not run")
        };
        assert_eq!(a.scheduler, Some(SchedulerKind::Starve));
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("all informed"));
    }

    #[test]
    fn usage_lists_everything() {
        let u = usage();
        for t in Task::NAMES {
            assert!(u.contains(t), "usage missing task {t}");
        }
    }
}
