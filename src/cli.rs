//! The `oraclesize` command-line tool: run any task on any family and
//! print the knowledge/communication costs.
//!
//! ```text
//! oraclesize run --family complete --n 64 --task broadcast
//! oraclesize run --family random-sparse --n 128 --task election --scheduler lifo
//! oraclesize run --family grid --n 100 --task spanner --stretch 3
//! oraclesize sweep --task broadcast --n 128 --runs 64 --threads 4 --drop 0.1
//! oraclesize trace --task broadcast --n 32 --out run.jsonl
//! oraclesize trace-diff left.jsonl right.jsonl
//! oraclesize spec t10 > t10.json
//! oraclesize serve --addr 127.0.0.1:7401 --journal-dir ckpt
//! oraclesize work --connect 127.0.0.1:7401 --threads 4 --journal-dir ckpt
//! oraclesize submit --connect 127.0.0.1:7401 --spec t10.json --out BENCH_T10.json
//! oraclesize list
//! ```
//!
//! `sweep` lowers its flags into the runtime's canonical [`SweepSpec`],
//! materializes the grid with [`CellGrid::from_spec`], and dispatches it
//! to the `oraclesize-runtime` pool — `--threads N` changes wall-clock
//! time only, never the report.
//!
//! `trace` streams one run's event trace as deterministic JSONL (to
//! `--out` or stdout); `trace-diff` compares two such artifacts and
//! reports the first divergence with node/round context.
//!
//! `spec` prints a committed experiment's canonical spec JSON; `serve`,
//! `work`, and `submit` run the same spec distributed across the sweep
//! service — the merged artifact is byte-identical to a local run.

use std::fmt::Write as _;
use std::sync::Arc;

use oraclesize_bench::grid::CellGrid;
use oraclesize_core::broadcast::{LightTreeOracle, SchemeB};
use oraclesize_core::construction::{
    collect_parent_ports, verify_bfs_tree, verify_mst, BfsTreeOracle, DistributedBfs, MstOracle,
    ZeroMessageTree,
};
use oraclesize_core::election::{
    verify_election, AnnouncedLeader, ElectionOracle, FloodMax, HirschbergSinclair,
};
use oraclesize_core::gossip::{decode_gossip_output, GossipOracle, TreeGossip};
use oraclesize_core::oracle::EmptyOracle;
use oraclesize_core::spanner::{collect_port_sets, verify_spanner, SpannerOracle};
use oraclesize_core::wakeup::{SpanningTreeOracle, TreeWakeup};
use oraclesize_core::{execute, OracleRun};
use oraclesize_graph::families::Family;
use oraclesize_runtime::spec::to_ppm;
use oraclesize_runtime::{
    drain, run_supervised_batch, Aggregate, CellSpec, FaultSpec, InstanceSpec, JsonlSink, KnobSpec,
    Pool, SchedulerSpec, SuperviseConfig, SweepOptions, SweepSpec,
};
use oraclesize_service::{Server, ServerConfig, WorkerConfig, WorkerOutcome};
use oraclesize_sim::protocol::{FloodOnce, Protocol};
use oraclesize_sim::trace::diff_lines;
use oraclesize_sim::{run_streamed, FaultPlan, Instance, SchedulerKind, SimConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The tasks the CLI can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Theorem 3.1: light-tree oracle + Scheme B.
    Broadcast,
    /// Theorem 2.1: spanning-tree oracle + tree wakeup.
    Wakeup,
    /// Oracle-free flooding baseline.
    Flood,
    /// Tree gossip.
    Gossip,
    /// Oracle-assisted leader election.
    Election,
    /// FloodMax election baseline.
    FloodMax,
    /// Hirschberg–Sinclair ring election (cycle family only).
    HsElection,
    /// Zero-message BFS-tree construction.
    Bfs,
    /// Zero-message MST construction.
    Mst,
    /// Flooding-based distributed BFS baseline.
    DistBfs,
    /// Zero-message t-spanner construction (`--stretch`).
    Spanner,
}

impl Task {
    /// Parses a task name.
    pub fn parse(s: &str) -> Option<Task> {
        Some(match s {
            "broadcast" => Task::Broadcast,
            "wakeup" => Task::Wakeup,
            "flood" => Task::Flood,
            "gossip" => Task::Gossip,
            "election" => Task::Election,
            "floodmax" => Task::FloodMax,
            "hs-election" => Task::HsElection,
            "bfs" => Task::Bfs,
            "mst" => Task::Mst,
            "dist-bfs" => Task::DistBfs,
            "spanner" => Task::Spanner,
            _ => return None,
        })
    }

    /// All task names, for `list` and error messages.
    pub const NAMES: [&'static str; 11] = [
        "broadcast",
        "wakeup",
        "flood",
        "gossip",
        "election",
        "floodmax",
        "hs-election",
        "bfs",
        "mst",
        "dist-bfs",
        "spanner",
    ];
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `run …`
    Run(RunArgs),
    /// `sweep …`
    Sweep(SweepArgs),
    /// `trace …`
    Trace(TraceArgs),
    /// `trace-diff <left> <right>`
    TraceDiff(TraceDiffArgs),
    /// `spec <name>`
    Spec(SpecArgs),
    /// `serve …`
    Serve(ServeArgs),
    /// `work …`
    Work(WorkArgs),
    /// `submit …`
    Submit(SubmitArgs),
    /// `list`
    List,
    /// `help` (also the zero-argument default)
    Help,
}

/// Arguments of the `spec` subcommand: print a committed experiment's
/// canonical [`SweepSpec`] JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecArgs {
    /// Experiment name (`t10`, `t20-corruption`, `t20-drops`,
    /// `t20-crashes`, `scale`).
    pub name: String,
    /// Use the bigger grid for the sweeps that have one (`scale`).
    pub large: bool,
}

/// Arguments of the `serve` subcommand: run the sweep service's job
/// server until every job has been delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Listen address.
    pub addr: String,
    /// Job journal directory; `None` disables server-side resume.
    pub journal_dir: Option<String>,
    /// Number of jobs to serve before exiting.
    pub jobs: usize,
    /// Expected worker count — a sharding hint, not a limit.
    pub workers: usize,
}

/// Arguments of the `work` subcommand: run one sweep worker against a
/// server.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkArgs {
    /// Server address to pull shards from.
    pub connect: String,
    /// Local pool threads.
    pub threads: usize,
    /// Segment journal directory; share it between workers for crash
    /// handoff.
    pub journal_dir: Option<String>,
    /// Fault drill: abandon the Nth claimed shard half-journaled.
    pub die_mid_shard: Option<u64>,
    /// Idle poll interval in milliseconds.
    pub poll_ms: u64,
    /// Worker name for server logs.
    pub name: String,
}

/// Arguments of the `submit` subcommand: send a spec to a server and
/// collect the merged artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Server address.
    pub connect: String,
    /// Path of the sweep spec JSON file.
    pub spec: String,
    /// Write the artifact here instead of returning it on stdout.
    pub out: Option<String>,
    /// Poll interval in milliseconds.
    pub poll_ms: u64,
    /// Skip server-side journal resume and recompute every cell.
    pub fresh: bool,
}

/// Arguments of the `run` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Graph family.
    pub family: Family,
    /// Approximate size.
    pub n: usize,
    /// Task to execute.
    pub task: Task,
    /// Source / root node.
    pub source: usize,
    /// Asynchronous scheduler; `None` = synchronous.
    pub scheduler: Option<SchedulerKind>,
    /// Erase node identities.
    pub anonymous: bool,
    /// RNG seed (graph generation and random scheduling).
    pub seed: u64,
    /// Spanner stretch.
    pub stretch: usize,
}

/// Arguments of the `sweep` subcommand: a declarative grid of seeded
/// runs over one shared instance, dispatched to the runtime pool.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Graph family.
    pub family: Family,
    /// Approximate size.
    pub n: usize,
    /// Task to sweep (`broadcast`, `wakeup`, or `flood`).
    pub task: Task,
    /// Source / root node.
    pub source: usize,
    /// Cells in the grid (one seeded run each).
    pub runs: usize,
    /// Worker threads for dispatch.
    pub threads: usize,
    /// Fixed scheduler sub-task size in cells; `None` lets the runtime
    /// pick a balanced plan. Chunking changes scheduling granularity
    /// only — never the report.
    pub chunk: Option<usize>,
    /// Asynchronous scheduler; `None` = synchronous. A `random` scheduler
    /// is re-seeded per cell so the cells stay independent.
    pub scheduler: Option<SchedulerKind>,
    /// Per-message drop probability (`0.0` = fault-free).
    pub drop: f64,
    /// RNG seed (graph generation and per-cell derivation).
    pub seed: u64,
    /// Checkpoint journal path; `None` disables checkpointing.
    pub journal: Option<String>,
    /// Resume from the journal (skip checkpointed cells) instead of
    /// starting fresh.
    pub resume: bool,
    /// Failed cells are re-run up to this many times.
    pub max_retries: u32,
    /// Per-cell watchdog step budget; `None` leaves the engine default.
    pub cell_timeout: Option<u64>,
    /// Exit zero even when cells degraded (needed retries, or finished
    /// with uninformed nodes under faults).
    pub allow_degraded: bool,
}

/// Arguments of the `trace` subcommand: one fully-traced run, streamed to
/// JSONL through the engine's sink API.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArgs {
    /// Graph family.
    pub family: Family,
    /// Approximate size.
    pub n: usize,
    /// Task to trace (`broadcast`, `wakeup`, or `flood`).
    pub task: Task,
    /// Source / root node.
    pub source: usize,
    /// Asynchronous scheduler; `None` = synchronous.
    pub scheduler: Option<SchedulerKind>,
    /// Per-message drop probability (`0.0` = fault-free).
    pub drop: f64,
    /// RNG seed (graph generation, scheduling, faults).
    pub seed: u64,
    /// Write the JSONL here instead of returning it on stdout.
    pub out: Option<String>,
}

/// Arguments of the `trace-diff` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiffArgs {
    /// Left JSONL artifact.
    pub left: String,
    /// Right JSONL artifact.
    pub right: String,
}

fn parse_family(s: &str) -> Option<Family> {
    Family::ALL.into_iter().find(|f| f.name() == s)
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// A usage message describing the problem.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("run") => {
            let mut family = Family::RandomSparse;
            let mut n = 64usize;
            let mut task = None;
            let mut source = 0usize;
            let mut scheduler = None;
            let mut anonymous = false;
            let mut seed = 2006u64;
            let mut stretch = 3usize;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--family" => {
                        let v = value("--family")?;
                        family = parse_family(v).ok_or_else(|| format!("unknown family {v:?}"))?;
                    }
                    "--n" => {
                        n = value("--n")?
                            .parse()
                            .map_err(|_| "--n needs an integer".to_string())?;
                    }
                    "--task" => {
                        let v = value("--task")?;
                        task = Some(Task::parse(v).ok_or_else(|| format!("unknown task {v:?}"))?);
                    }
                    "--source" => {
                        source = value("--source")?
                            .parse()
                            .map_err(|_| "--source needs an integer".to_string())?;
                    }
                    "--scheduler" => {
                        let v = value("--scheduler")?;
                        scheduler = Some(match v.as_str() {
                            "fifo" => SchedulerKind::Fifo,
                            "lifo" => SchedulerKind::Lifo,
                            "random" => SchedulerKind::Random { seed },
                            "starve" => SchedulerKind::Starve,
                            other => return Err(format!("unknown scheduler {other:?}")),
                        });
                    }
                    "--anonymous" => anonymous = true,
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|_| "--seed needs an integer".to_string())?;
                    }
                    "--stretch" => {
                        stretch = value("--stretch")?
                            .parse()
                            .map_err(|_| "--stretch needs an integer".to_string())?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let task = task.ok_or("run requires --task".to_string())?;
            Ok(Command::Run(RunArgs {
                family,
                n,
                task,
                source,
                scheduler,
                anonymous,
                seed,
                stretch,
            }))
        }
        Some("sweep") => {
            let mut family = Family::RandomSparse;
            let mut n = 64usize;
            let mut task = None;
            let mut source = 0usize;
            let mut runs = 16usize;
            let mut threads = 1usize;
            let mut chunk = None;
            let mut scheduler = None;
            let mut drop = 0.0f64;
            let mut seed = 2006u64;
            let mut journal = None;
            let mut resume = false;
            let mut max_retries = 0u32;
            let mut cell_timeout = None;
            let mut allow_degraded = false;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--family" => {
                        let v = value("--family")?;
                        family = parse_family(v).ok_or_else(|| format!("unknown family {v:?}"))?;
                    }
                    "--n" => {
                        n = value("--n")?
                            .parse()
                            .map_err(|_| "--n needs an integer".to_string())?;
                    }
                    "--task" => {
                        let v = value("--task")?;
                        task = Some(Task::parse(v).ok_or_else(|| format!("unknown task {v:?}"))?);
                    }
                    "--source" => {
                        source = value("--source")?
                            .parse()
                            .map_err(|_| "--source needs an integer".to_string())?;
                    }
                    "--journal" => journal = Some(value("--journal")?.clone()),
                    "--resume" => resume = true,
                    "--max-retries" => {
                        max_retries = value("--max-retries")?
                            .parse()
                            .map_err(|_| "--max-retries needs an integer".to_string())?;
                    }
                    "--cell-timeout" => {
                        cell_timeout = Some(
                            value("--cell-timeout")?
                                .parse()
                                .map_err(|_| "--cell-timeout needs a step count".to_string())?,
                        );
                    }
                    "--allow-degraded" => allow_degraded = true,
                    "--runs" => {
                        runs = value("--runs")?
                            .parse()
                            .map_err(|_| "--runs needs an integer".to_string())?;
                    }
                    "--threads" => {
                        threads = value("--threads")?
                            .parse()
                            .map_err(|_| "--threads needs an integer".to_string())?;
                    }
                    "--chunk" => {
                        let v: usize = value("--chunk")?
                            .parse()
                            .map_err(|_| "--chunk needs an integer".to_string())?;
                        if v == 0 {
                            return Err("--chunk must be at least 1".into());
                        }
                        chunk = Some(v);
                    }
                    "--scheduler" => {
                        let v = value("--scheduler")?;
                        scheduler = Some(match v.as_str() {
                            "fifo" => SchedulerKind::Fifo,
                            "lifo" => SchedulerKind::Lifo,
                            "random" => SchedulerKind::Random { seed },
                            "starve" => SchedulerKind::Starve,
                            other => return Err(format!("unknown scheduler {other:?}")),
                        });
                    }
                    "--drop" => {
                        drop = value("--drop")?
                            .parse()
                            .map_err(|_| "--drop needs a probability".to_string())?;
                        if !(0.0..=1.0).contains(&drop) {
                            return Err("--drop must be within [0, 1]".into());
                        }
                    }
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|_| "--seed needs an integer".to_string())?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let task = task.ok_or("sweep requires --task".to_string())?;
            if !matches!(task, Task::Broadcast | Task::Wakeup | Task::Flood) {
                return Err("sweep supports --task broadcast, wakeup, or flood".into());
            }
            if runs == 0 {
                return Err("--runs must be at least 1".into());
            }
            if resume && journal.is_none() {
                return Err("--resume requires --journal".into());
            }
            Ok(Command::Sweep(SweepArgs {
                family,
                n,
                task,
                source,
                runs,
                threads,
                chunk,
                scheduler,
                drop,
                seed,
                journal,
                resume,
                max_retries,
                cell_timeout,
                allow_degraded,
            }))
        }
        Some("trace") => {
            let mut family = Family::RandomSparse;
            let mut n = 32usize;
            let mut task = None;
            let mut source = 0usize;
            let mut scheduler = None;
            let mut drop = 0.0f64;
            let mut seed = 2006u64;
            let mut out = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--family" => {
                        let v = value("--family")?;
                        family = parse_family(v).ok_or_else(|| format!("unknown family {v:?}"))?;
                    }
                    "--n" => {
                        n = value("--n")?
                            .parse()
                            .map_err(|_| "--n needs an integer".to_string())?;
                    }
                    "--task" => {
                        let v = value("--task")?;
                        task = Some(Task::parse(v).ok_or_else(|| format!("unknown task {v:?}"))?);
                    }
                    "--source" => {
                        source = value("--source")?
                            .parse()
                            .map_err(|_| "--source needs an integer".to_string())?;
                    }
                    "--scheduler" => {
                        let v = value("--scheduler")?;
                        scheduler = Some(match v.as_str() {
                            "fifo" => SchedulerKind::Fifo,
                            "lifo" => SchedulerKind::Lifo,
                            "random" => SchedulerKind::Random { seed },
                            "starve" => SchedulerKind::Starve,
                            other => return Err(format!("unknown scheduler {other:?}")),
                        });
                    }
                    "--drop" => {
                        drop = value("--drop")?
                            .parse()
                            .map_err(|_| "--drop needs a probability".to_string())?;
                        if !(0.0..=1.0).contains(&drop) {
                            return Err("--drop must be within [0, 1]".into());
                        }
                    }
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|_| "--seed needs an integer".to_string())?;
                    }
                    "--out" => out = Some(value("--out")?.clone()),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let task = task.ok_or("trace requires --task".to_string())?;
            if !matches!(task, Task::Broadcast | Task::Wakeup | Task::Flood) {
                return Err("trace supports --task broadcast, wakeup, or flood".into());
            }
            Ok(Command::Trace(TraceArgs {
                family,
                n,
                task,
                source,
                scheduler,
                drop,
                seed,
                out,
            }))
        }
        Some("trace-diff") => {
            let left = it
                .next()
                .ok_or("trace-diff needs two JSONL files".to_string())?
                .clone();
            let right = it
                .next()
                .ok_or("trace-diff needs two JSONL files".to_string())?
                .clone();
            if let Some(extra) = it.next() {
                return Err(format!("unexpected argument {extra:?}"));
            }
            Ok(Command::TraceDiff(TraceDiffArgs { left, right }))
        }
        Some("spec") => {
            let name = it
                .next()
                .ok_or_else(|| format!("spec needs an experiment name ({SPEC_NAMES})"))?
                .clone();
            let mut large = false;
            for flag in it {
                match flag.as_str() {
                    "--large" => large = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Spec(SpecArgs { name, large }))
        }
        Some("serve") => {
            let mut addr = "127.0.0.1:7401".to_string();
            let mut journal_dir = None;
            let mut jobs = 1usize;
            let mut workers = 2usize;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--addr" => addr = value("--addr")?.clone(),
                    "--journal-dir" => journal_dir = Some(value("--journal-dir")?.clone()),
                    "--jobs" => {
                        jobs = value("--jobs")?
                            .parse()
                            .map_err(|_| "--jobs needs an integer".to_string())?;
                    }
                    "--workers" => {
                        workers = value("--workers")?
                            .parse()
                            .map_err(|_| "--workers needs an integer".to_string())?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            if jobs == 0 {
                return Err("--jobs must be at least 1".into());
            }
            Ok(Command::Serve(ServeArgs {
                addr,
                journal_dir,
                jobs,
                workers,
            }))
        }
        Some("work") => {
            let mut connect = "127.0.0.1:7401".to_string();
            let mut threads = 2usize;
            let mut journal_dir = None;
            let mut die_mid_shard = None;
            let mut poll_ms = 50u64;
            let mut name = "worker".to_string();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--connect" => connect = value("--connect")?.clone(),
                    "--threads" => {
                        threads = value("--threads")?
                            .parse()
                            .map_err(|_| "--threads needs an integer".to_string())?;
                    }
                    "--journal-dir" => journal_dir = Some(value("--journal-dir")?.clone()),
                    "--die-mid-shard" => {
                        let v: u64 = value("--die-mid-shard")?
                            .parse()
                            .map_err(|_| "--die-mid-shard needs an integer".to_string())?;
                        if v == 0 {
                            return Err("--die-mid-shard counts claimed shards from 1".into());
                        }
                        die_mid_shard = Some(v);
                    }
                    "--poll-ms" => {
                        poll_ms = value("--poll-ms")?
                            .parse()
                            .map_err(|_| "--poll-ms needs an integer".to_string())?;
                    }
                    "--name" => name = value("--name")?.clone(),
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            Ok(Command::Work(WorkArgs {
                connect,
                threads,
                journal_dir,
                die_mid_shard,
                poll_ms,
                name,
            }))
        }
        Some("submit") => {
            let mut connect = "127.0.0.1:7401".to_string();
            let mut spec = None;
            let mut out = None;
            let mut poll_ms = 100u64;
            let mut fresh = false;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--connect" => connect = value("--connect")?.clone(),
                    "--spec" => spec = Some(value("--spec")?.clone()),
                    "--out" => out = Some(value("--out")?.clone()),
                    "--poll-ms" => {
                        poll_ms = value("--poll-ms")?
                            .parse()
                            .map_err(|_| "--poll-ms needs an integer".to_string())?;
                    }
                    "--fresh" => fresh = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let spec = spec.ok_or("submit requires --spec".to_string())?;
            Ok(Command::Submit(SubmitArgs {
                connect,
                spec,
                out,
                poll_ms,
                fresh,
            }))
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

/// The experiment names `spec` can print.
const SPEC_NAMES: &str = "t10, t20-corruption, t20-drops, t20-crashes, scale";

/// The `help` text.
pub fn usage() -> String {
    format!(
        "oraclesize — run oracle-assisted communication tasks (PODC 2006)\n\n\
         USAGE:\n  oraclesize run --task <task> [--family <family>] [--n <size>]\n\
         \x20                [--source <node>] [--scheduler fifo|lifo|random|starve]\n\
         \x20                [--anonymous] [--seed <u64>] [--stretch <t>]\n\
         \x20 oraclesize sweep --task broadcast|wakeup|flood [--runs <k>]\n\
         \x20                [--threads <t>] [--chunk <cells>] [--drop <p>]\n\
         \x20                [--family <family>]\n\
         \x20                [--n <size>] [--scheduler <s>] [--seed <u64>]\n\
         \x20                [--journal <file>] [--resume] [--max-retries <k>]\n\
         \x20                [--cell-timeout <steps>] [--allow-degraded]\n\
         \x20 oraclesize trace --task broadcast|wakeup|flood [--family <family>]\n\
         \x20                [--n <size>] [--source <node>] [--scheduler <s>]\n\
         \x20                [--drop <p>] [--seed <u64>] [--out <file.jsonl>]\n\
         \x20 oraclesize trace-diff <left.jsonl> <right.jsonl>\n\
         \x20 oraclesize spec <{SPEC_NAMES_USAGE}> [--large]\n\
         \x20 oraclesize serve [--addr <host:port>] [--journal-dir <dir>]\n\
         \x20                [--jobs <k>] [--workers <k>]\n\
         \x20 oraclesize work [--connect <host:port>] [--threads <t>]\n\
         \x20                [--journal-dir <dir>] [--die-mid-shard <k>]\n\
         \x20                [--poll-ms <ms>] [--name <worker>]\n\
         \x20 oraclesize submit --spec <file.json> [--connect <host:port>]\n\
         \x20                [--out <file.json>] [--poll-ms <ms>] [--fresh]\n\
         \x20 oraclesize list\n\n\
         TASKS:    {}\nFAMILIES: {}\nSPECS:    {}\n",
        Task::NAMES.join(" "),
        Family::ALL.map(|f| f.name()).join(" "),
        SPEC_NAMES,
        SPEC_NAMES_USAGE = SPEC_NAMES.replace(", ", "|"),
    )
}

/// Executes a parsed command and renders its report.
///
/// # Errors
///
/// Engine errors, verification failures, or invalid combinations (e.g.
/// `hs-election` off a cycle).
pub fn run_command(cmd: &Command) -> Result<String, String> {
    run_command_status(cmd).map(|(report, _)| report)
}

/// Like [`run_command`], but also reports whether the run is *healthy*:
/// `false` means the report is valid yet the process should exit nonzero
/// — a sweep finished with degraded cells (retries were needed, or faults
/// left nodes uninformed) and `--allow-degraded` was not passed.
///
/// # Errors
///
/// Same as [`run_command`]; aborted sweep cells are errors, not
/// degradation.
pub fn run_command_status(cmd: &Command) -> Result<(String, bool), String> {
    match cmd {
        Command::Help => Ok((usage(), true)),
        Command::List => {
            let mut out = String::new();
            let _ = writeln!(out, "families: {}", Family::ALL.map(|f| f.name()).join(" "));
            let _ = writeln!(out, "tasks:    {}", Task::NAMES.join(" "));
            Ok((out, true))
        }
        Command::Run(args) => run_task(args).map(|r| (r, true)),
        Command::Sweep(args) => run_sweep(args),
        Command::Trace(args) => run_trace(args).map(|r| (r, true)),
        Command::TraceDiff(args) => run_trace_diff(args).map(|r| (r, true)),
        Command::Spec(args) => render_spec(args).map(|r| (r, true)),
        Command::Serve(args) => run_serve(args).map(|r| (r, true)),
        Command::Work(args) => run_work(args).map(|r| (r, true)),
        Command::Submit(args) => run_submit(args).map(|r| (r, true)),
    }
}

/// Looks up a committed experiment's canonical spec and renders it as
/// one JSON document (what `submit --spec` consumes).
fn render_spec(args: &SpecArgs) -> Result<String, String> {
    let spec = match args.name.as_str() {
        "t10" => oraclesize_bench::experiments::t10_spec(),
        "t20-corruption" => oraclesize_bench::experiments::t20_corruption_spec(),
        "t20-drops" => oraclesize_bench::experiments::t20_drops_spec(),
        "t20-crashes" => oraclesize_bench::experiments::t20_crashes_spec(),
        "scale" => oraclesize_bench::experiments::scale_spec(args.large),
        other => return Err(format!("unknown spec {other:?} (expected {SPEC_NAMES})")),
    };
    Ok(format!("{}\n", spec.render()))
}

/// Runs the sweep service's server until every job has been delivered.
fn run_serve(args: &ServeArgs) -> Result<String, String> {
    let server = Server::bind(ServerConfig {
        addr: args.addr.clone(),
        journal_dir: args.journal_dir.as_ref().map(std::path::PathBuf::from),
        jobs: args.jobs,
        workers_hint: args.workers,
    })
    .map_err(|e| format!("bind {}: {e}", args.addr))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local addr: {e}"))?;
    eprintln!("serve: listening on {addr} ({} job(s))", args.jobs);
    server.run().map_err(|e| format!("serve: {e}"))?;
    Ok(format!("served {} job(s) on {addr}\n", args.jobs))
}

/// Runs one sweep worker until the server signals shutdown.
fn run_work(args: &WorkArgs) -> Result<String, String> {
    let outcome = oraclesize_service::run_worker(&WorkerConfig {
        connect: args.connect.clone(),
        threads: args.threads,
        journal_dir: args.journal_dir.as_ref().map(std::path::PathBuf::from),
        poll_ms: args.poll_ms,
        die_mid_shard: args.die_mid_shard,
        name: args.name.clone(),
    })?;
    Ok(match outcome {
        WorkerOutcome::Finished { shards, cells } => format!(
            "worker {}: finished ({shards} shard(s), {cells} cell(s))\n",
            args.name
        ),
        WorkerOutcome::Died { shards } => format!(
            "worker {}: die-mid-shard drill fired after {shards} completed shard(s)\n",
            args.name
        ),
    })
}

/// Submits a spec file to a running server and returns (or writes) the
/// merged artifact.
fn run_submit(args: &SubmitArgs) -> Result<String, String> {
    let text = std::fs::read_to_string(&args.spec)
        .map_err(|e| format!("cannot read {:?}: {e}", args.spec))?;
    let artifact = oraclesize_service::submit(&args.connect, &text, !args.fresh, args.poll_ms)?;
    match &args.out {
        Some(path) => {
            if let Some(dir) = std::path::Path::new(path)
                .parent()
                .filter(|d| !d.as_os_str().is_empty())
            {
                std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
            }
            std::fs::write(path, &artifact).map_err(|e| format!("cannot write {path:?}: {e}"))?;
            Ok(format!("wrote:        {path} ({} bytes)\n", artifact.len()))
        }
        None => Ok(artifact),
    }
}

fn run_task(args: &RunArgs) -> Result<String, String> {
    if args.task == Task::HsElection && args.family != Family::Cycle {
        return Err("hs-election requires --family cycle".into());
    }
    let mut rng = StdRng::seed_from_u64(args.seed);
    let g = args.family.build(args.n, &mut rng);
    if args.source >= g.num_nodes() {
        return Err(format!(
            "--source {} out of range (graph has {} nodes)",
            args.source,
            g.num_nodes()
        ));
    }
    let base = if matches!(args.task, Task::Wakeup) {
        SimConfig::wakeup()
    } else {
        SimConfig::broadcast()
    };
    let config = match args.scheduler {
        // `--seed` wins regardless of where it sat relative to
        // `--scheduler random` in the argument list.
        Some(SchedulerKind::Random { .. }) => {
            base.with_scheduler(SchedulerKind::Random { seed: args.seed })
        }
        Some(kind) => base.with_scheduler(kind),
        None => base,
    }
    .with_anonymous(args.anonymous);
    if args.anonymous
        && matches!(
            args.task,
            Task::Gossip | Task::Election | Task::FloodMax | Task::HsElection
        )
    {
        return Err("this task needs node identities; drop --anonymous".into());
    }

    let exec = |oracle: &dyn oraclesize_sim::Oracle,
                protocol: &dyn oraclesize_sim::Protocol|
     -> Result<OracleRun, String> {
        execute(&g, args.source, oracle, protocol, &config).map_err(|e| e.to_string())
    };

    let (run, verification) = match args.task {
        Task::Broadcast => {
            let r = exec(&LightTreeOracle, &SchemeB)?;
            let v = if r.outcome.all_informed() {
                "all informed"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Wakeup => {
            let r = exec(&SpanningTreeOracle::default(), &TreeWakeup)?;
            let v = if r.outcome.all_informed() {
                "all informed"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Flood => {
            let r = exec(&EmptyOracle, &FloodOnce)?;
            let v = if r.outcome.all_informed() {
                "all informed"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Gossip => {
            let r = exec(&GossipOracle::default(), &TreeGossip)?;
            let complete = r.outcome.outputs.iter().all(|o| {
                o.as_ref()
                    .and_then(decode_gossip_output)
                    .is_some_and(|s| s.len() == g.num_nodes())
            });
            let v = if complete {
                "all nodes know all values"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Election => {
            let r = exec(&ElectionOracle, &AnnouncedLeader)?;
            let leader = verify_election(&g, &r.outcome.outputs, false)?;
            (r, format!("leader {leader} agreed everywhere"))
        }
        Task::FloodMax => {
            let r = exec(&EmptyOracle, &FloodMax)?;
            let leader = verify_election(&g, &r.outcome.outputs, true)?;
            (r, format!("maximum {leader} elected everywhere"))
        }
        Task::HsElection => {
            let r = exec(&EmptyOracle, &HirschbergSinclair)?;
            let leader = verify_election(&g, &r.outcome.outputs, true)?;
            (r, format!("maximum {leader} elected everywhere"))
        }
        Task::Bfs => {
            let r = exec(&BfsTreeOracle, &ZeroMessageTree)?;
            let ports =
                collect_parent_ports(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            verify_bfs_tree(&g, args.source, &ports)?;
            (r, "verified BFS tree".to_string())
        }
        Task::Mst => {
            let r = exec(&MstOracle, &ZeroMessageTree)?;
            let ports =
                collect_parent_ports(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            verify_mst(&g, args.source, &ports)?;
            (r, "verified minimum spanning tree".to_string())
        }
        Task::DistBfs => {
            let r = exec(&EmptyOracle, &DistributedBfs)?;
            let ports =
                collect_parent_ports(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            let v = if args.scheduler.is_none() {
                verify_bfs_tree(&g, args.source, &ports)?;
                "verified BFS tree".to_string()
            } else {
                "spanning tree (async: BFS property not guaranteed)".to_string()
            };
            (r, v)
        }
        Task::Spanner => {
            let r = exec(&SpannerOracle::new(args.stretch.max(1)), &ZeroMessageTree)?;
            let sets = collect_port_sets(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            let edges = verify_spanner(&g, &sets, args.stretch.max(1))?;
            (
                r,
                format!("verified {}-spanner with {edges} edges", args.stretch),
            )
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph:        {} (n = {}, m = {})",
        args.family.name(),
        g.num_nodes(),
        g.num_edges()
    );
    let _ = writeln!(
        out,
        "execution:    {}{}",
        args.scheduler.map_or("synchronous", |k| k.name()),
        if args.anonymous { ", anonymous" } else { "" }
    );
    let _ = writeln!(out, "oracle bits:  {}", run.oracle_bits);
    let _ = writeln!(out, "messages:     {}", run.outcome.metrics.messages);
    let _ = writeln!(out, "payload bits: {}", run.outcome.metrics.payload_bits);
    let _ = writeln!(out, "rounds:       {}", run.outcome.metrics.rounds);
    let _ = writeln!(out, "result:       {verification}");
    Ok(out)
}

/// Lowers the sweep flags into the runtime's canonical [`SweepSpec`] —
/// the same job description the bench grids and the sweep service
/// consume, so a CLI sweep can be replayed (or distributed) verbatim.
/// One instance, one cell per seeded run; a `random` scheduler and any
/// fault plan are re-seeded per cell so the cells stay independent.
pub fn sweep_spec(args: &SweepArgs) -> Result<SweepSpec, String> {
    let (task, oracle, scheme, mode) = match args.task {
        Task::Broadcast => ("broadcast", "light-tree", "scheme-b", "broadcast"),
        Task::Wakeup => ("wakeup", "spanning-tree", "tree-wakeup", "wakeup"),
        Task::Flood => ("flood", "empty", "flood", "broadcast"),
        _ => return Err("sweep supports --task broadcast, wakeup, or flood".into()),
    };
    let mut spec = SweepSpec::new(format!("sweep-{task}"), args.seed);
    spec.instances.push(InstanceSpec {
        family: args.family.name().to_string(),
        n: args.n as u64,
        seed: args.seed,
        p_ppm: None,
        source: args.source as u64,
        oracle: oracle.to_string(),
    });
    for k in 0..args.runs {
        let cell_seed = args.seed.wrapping_add(k as u64 + 1);
        let scheduler = match args.scheduler {
            // Re-seed per cell so the cells sample different delivery
            // orders while staying reproducible.
            Some(SchedulerKind::Random { .. }) => Some(SchedulerSpec {
                kind: "random".to_string(),
                seed: cell_seed,
            }),
            Some(kind) => Some(SchedulerSpec::of(kind)),
            None => None,
        };
        let faults = if args.drop > 0.0 {
            FaultSpec {
                seed: cell_seed,
                drop_ppm: to_ppm(args.drop),
                ..FaultSpec::default()
            }
        } else {
            FaultSpec::default()
        };
        spec.cells.push(CellSpec {
            label: format!("run-{k}"),
            instance: 0,
            scheme: scheme.to_string(),
            retries: None,
            mode: mode.to_string(),
            scheduler,
            anonymous: false,
            max_message_bits: None,
            quiescence_polls: (args.drop > 0.0).then_some(16),
            seed: cell_seed,
            faults,
        });
    }
    spec.knobs = KnobSpec {
        max_retries: u64::from(args.max_retries),
        cell_timeout: args.cell_timeout,
        chunk: args.chunk.map(|c| c as u64),
    };
    Ok(spec)
}

/// Lowers the flags into a [`SweepSpec`], materializes the grid with
/// [`CellGrid::from_spec`], dispatches it across the pool under
/// supervision, and folds the reports in cell order — the output is
/// identical at any `--threads` value, and (with `--journal`) across
/// kill/resume boundaries.
fn run_sweep(args: &SweepArgs) -> Result<(String, bool), String> {
    let spec = sweep_spec(args)?;
    let grid = CellGrid::from_spec(&spec)?;
    let g = Arc::clone(&grid.requests()[0].instance.graph);

    let sweep_opts = SweepOptions {
        supervise: SuperviseConfig {
            max_retries: args.max_retries,
            cell_timeout: args.cell_timeout,
            ..SuperviseConfig::default()
        },
        journal: args.journal.as_ref().map(std::path::PathBuf::from),
        resume: args.resume,
        // Journal records carry the per-cell seed, so a resume against a
        // different `--seed` re-runs cells instead of replaying them.
        seeds: Some(spec.cells.iter().map(|c| c.seed).collect()),
        chaos: Default::default(),
        chunk: args.chunk,
        // Every cell runs the same task on the same graph, so there is
        // no cost skew for hints to capture — the balanced plan is
        // already optimal.
        costs: None,
    };
    let sweep = run_supervised_batch(&Pool::new(args.threads), grid.requests(), &sweep_opts);
    let reports = sweep.reports();
    let mut agg = Aggregate::new();
    drain(&mut agg, &reports);
    if agg.errors > 0 {
        let first = reports
            .iter()
            .find_map(|r| r.result.as_ref().err())
            .expect("errors counted");
        return Err(format!(
            "{} of {} cells aborted: {first}",
            agg.errors, agg.cells
        ));
    }

    let cells = agg.cells;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph:        {} (n = {}, m = {})",
        args.family.name(),
        g.num_nodes(),
        g.num_edges()
    );
    let _ = writeln!(
        out,
        "sweep:        {} cells, {} thread(s), drop = {:.2}",
        cells,
        args.threads.max(1),
        args.drop
    );
    let _ = writeln!(
        out,
        "execution:    {}",
        args.scheduler.map_or("synchronous", |k| k.name())
    );
    let _ = writeln!(out, "oracle bits:  {}", agg.oracle_bits / cells);
    let _ = writeln!(out, "completed:    {}/{}", agg.completed, cells);
    let _ = writeln!(
        out,
        "outcomes:     {}",
        sweep.summary().trim_start_matches("outcomes: ")
    );
    let _ = writeln!(
        out,
        "messages:     total {}, mean {:.1}, max {}",
        agg.totals.messages,
        agg.totals.messages as f64 / cells as f64,
        agg.max_messages
    );
    let _ = writeln!(
        out,
        "rounds:       total {}, max {}",
        agg.totals.rounds, agg.max_rounds
    );
    if args.drop > 0.0 {
        let _ = writeln!(out, "dropped:      {}", agg.totals.faults.dropped);
    }
    for warning in &sweep.warnings {
        let _ = writeln!(out, "warning:      {warning}");
    }
    // Scheduling telemetry varies with thread count and steal timing, so
    // this footer is never part of any byte-pinned artifact — the CI
    // smoke jobs and the determinism tests below filter it out before
    // diffing. (Runs/sec is appended by the binary, which owns the wall
    // clock; the library never reads it.)
    let _ = writeln!(out, "throughput:   {}", sweep.sched.footer(None));
    let healthy = !sweep.any_degraded() && agg.completed == cells;
    Ok((out, healthy || args.allow_degraded))
}

/// Builds the task's instance once, then streams a single fully-traced run
/// through a JSONL sink — events are rendered as they are emitted, never
/// accumulated, and the bytes are identical on every machine for the same
/// arguments.
fn run_trace(args: &TraceArgs) -> Result<String, String> {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let g = args.family.build(args.n, &mut rng).into_shared();
    if args.source >= g.num_nodes() {
        return Err(format!(
            "--source {} out of range (graph has {} nodes)",
            args.source,
            g.num_nodes()
        ));
    }
    let (instance, protocol): (Arc<Instance>, Arc<dyn Protocol + Send + Sync>) = match args.task {
        Task::Broadcast => (
            Instance::build(Arc::clone(&g), args.source, &LightTreeOracle),
            Arc::new(SchemeB),
        ),
        Task::Wakeup => (
            Instance::build(Arc::clone(&g), args.source, &SpanningTreeOracle::default()),
            Arc::new(TreeWakeup),
        ),
        Task::Flood => (
            Instance::build(Arc::clone(&g), args.source, &EmptyOracle),
            Arc::new(FloodOnce),
        ),
        _ => return Err("trace supports --task broadcast, wakeup, or flood".into()),
    };
    let base = if args.task == Task::Wakeup {
        SimConfig::wakeup()
    } else {
        SimConfig::broadcast()
    };
    // `--seed` is authoritative even when it appears after `--scheduler
    // random` on the command line.
    let mut config = match args.scheduler {
        Some(SchedulerKind::Random { .. }) => {
            base.with_scheduler(SchedulerKind::Random { seed: args.seed })
        }
        Some(kind) => base.with_scheduler(kind),
        None => base,
    };
    if args.drop > 0.0 {
        config = config
            .with_faults(FaultPlan::message_faults(args.seed, args.drop, 0.0, 0.0))
            .with_quiescence_polls(16);
    }

    let mut sink = JsonlSink::new(0);
    let outcome = run_streamed(&instance, protocol.as_ref(), &config, &mut sink)
        .map_err(|e| e.to_string())?;
    let events = sink.len();
    let jsonl = sink.into_string();
    match &args.out {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("cannot write {path:?}: {e}"))?;
            let mut out = String::new();
            let _ = writeln!(out, "wrote:        {path} ({events} events)");
            let _ = writeln!(
                out,
                "graph:        {} (n = {}, m = {})",
                args.family.name(),
                g.num_nodes(),
                g.num_edges()
            );
            let _ = writeln!(out, "messages:     {}", outcome.metrics.messages);
            let _ = writeln!(out, "rounds:       {}", outcome.metrics.rounds);
            let _ = writeln!(
                out,
                "result:       {}",
                if outcome.all_informed() {
                    "all informed"
                } else {
                    "INCOMPLETE"
                }
            );
            Ok(out)
        }
        None => Ok(jsonl),
    }
}

/// Compares two JSONL trace artifacts line by line and reports either
/// byte-identity or the first divergence with its node/round context.
/// Divergence is a *finding*, not a usage error, so it renders as normal
/// output.
fn run_trace_diff(args: &TraceDiffArgs) -> Result<String, String> {
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))
    };
    let left = read(&args.left)?;
    let right = read(&args.right)?;
    let mut out = diff_lines(&left, &right).render();
    out.push('\n');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_help_and_list() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["list"])).unwrap(), Command::List);
        assert!(parse_args(&args(&["bogus"])).is_err());
    }

    #[test]
    fn parse_run_defaults_and_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "broadcast",
            "--family",
            "complete",
            "--n",
            "32",
            "--scheduler",
            "lifo",
            "--anonymous",
            "--seed",
            "7",
        ]))
        .unwrap();
        let Command::Run(a) = cmd else {
            panic!("not run")
        };
        assert_eq!(a.task, Task::Broadcast);
        assert_eq!(a.family, Family::Complete);
        assert_eq!(a.n, 32);
        assert_eq!(a.scheduler, Some(SchedulerKind::Lifo));
        assert!(a.anonymous);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&args(&["run"])).is_err()); // no task
        assert!(parse_args(&args(&["run", "--task", "nope"])).is_err());
        assert!(parse_args(&args(&["run", "--task", "wakeup", "--family", "nope"])).is_err());
        assert!(parse_args(&args(&["run", "--task", "wakeup", "--n"])).is_err());
        assert!(parse_args(&args(&["run", "--task", "wakeup", "--wat"])).is_err());
    }

    #[test]
    fn every_task_runs_and_verifies() {
        for task in Task::NAMES {
            let family = if task == "hs-election" {
                "cycle"
            } else {
                "random-sparse"
            };
            let cmd = parse_args(&args(&[
                "run", "--task", task, "--family", family, "--n", "24",
            ]))
            .unwrap();
            let report = run_command(&cmd).unwrap_or_else(|e| panic!("{task}: {e}"));
            assert!(report.contains("result:"), "{task}");
            assert!(!report.contains("INCOMPLETE"), "{task}");
        }
    }

    #[test]
    fn hs_election_requires_cycle() {
        let cmd = parse_args(&args(&["run", "--task", "hs-election", "--family", "grid"])).unwrap();
        assert!(run_command(&cmd).is_err());
    }

    #[test]
    fn anonymous_labeled_tasks_rejected() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "gossip",
            "--anonymous",
            "--family",
            "cycle",
        ]))
        .unwrap();
        assert!(run_command(&cmd).is_err());
    }

    #[test]
    fn async_runs_work() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "broadcast",
            "--family",
            "hypercube",
            "--n",
            "32",
            "--scheduler",
            "random",
        ]))
        .unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("all informed"));
    }

    #[test]
    fn starve_scheduler_is_exposed() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "broadcast",
            "--family",
            "cycle",
            "--n",
            "16",
            "--scheduler",
            "starve",
        ]))
        .unwrap();
        let Command::Run(ref a) = cmd else {
            panic!("not run")
        };
        assert_eq!(a.scheduler, Some(SchedulerKind::Starve));
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("all informed"));
    }

    #[test]
    fn parse_sweep_flags() {
        let cmd = parse_args(&args(&[
            "sweep",
            "--task",
            "flood",
            "--family",
            "cycle",
            "--n",
            "20",
            "--runs",
            "8",
            "--threads",
            "3",
            "--drop",
            "0.25",
            "--seed",
            "11",
            "--journal",
            "ckpt.journal",
            "--resume",
            "--max-retries",
            "2",
            "--cell-timeout",
            "5000",
            "--chunk",
            "4",
            "--allow-degraded",
        ]))
        .unwrap();
        let Command::Sweep(a) = cmd else {
            panic!("not sweep")
        };
        assert_eq!(a.task, Task::Flood);
        assert_eq!(a.family, Family::Cycle);
        assert_eq!(a.runs, 8);
        assert_eq!(a.threads, 3);
        assert_eq!(a.chunk, Some(4));
        assert_eq!(a.drop, 0.25);
        assert_eq!(a.seed, 11);
        assert_eq!(a.journal.as_deref(), Some("ckpt.journal"));
        assert!(a.resume);
        assert_eq!(a.max_retries, 2);
        assert_eq!(a.cell_timeout, Some(5000));
        assert!(a.allow_degraded);
    }

    #[test]
    fn sweep_rejects_unsupported_input() {
        assert!(parse_args(&args(&["sweep"])).is_err()); // no task
        assert!(parse_args(&args(&["sweep", "--task", "gossip"])).is_err());
        assert!(parse_args(&args(&["sweep", "--task", "flood", "--drop", "1.5"])).is_err());
        assert!(parse_args(&args(&["sweep", "--task", "flood", "--runs", "0"])).is_err());
        assert!(parse_args(&args(&["sweep", "--task", "flood", "--max-retries", "x"])).is_err());
        // A zero-cell chunk cannot cover the grid.
        assert!(parse_args(&args(&["sweep", "--task", "flood", "--chunk", "0"])).is_err());
        // --resume without a journal has nothing to resume from.
        assert!(parse_args(&args(&["sweep", "--task", "flood", "--resume"])).is_err());
    }

    #[test]
    fn sweep_output_is_thread_count_invariant() {
        let base = ["sweep", "--task", "wakeup", "--n", "24", "--runs", "6"];
        let serial = {
            let cmd = parse_args(&args(&base)).unwrap();
            run_command(&cmd).unwrap()
        };
        assert!(serial.contains("completed:    6/6"), "{serial}");
        assert!(serial.contains("throughput:"), "{serial}");
        for threads in ["2", "8", "16"] {
            for chunk in [None, Some("1"), Some("4")] {
                let mut argv: Vec<&str> = base.to_vec();
                argv.extend(["--threads", threads]);
                if let Some(chunk) = chunk {
                    argv.extend(["--chunk", chunk]);
                }
                let cmd = parse_args(&args(&argv)).unwrap();
                let parallel = run_command(&cmd).unwrap();
                // The thread count is echoed in the header and the
                // throughput footer is scheduling telemetry; everything
                // else must match the serial run byte for byte.
                let tail = |s: &str| {
                    s.lines()
                        .filter(|l| !l.starts_with("sweep:") && !l.starts_with("throughput:"))
                        .collect::<Vec<_>>()
                        .join("\n")
                };
                assert_eq!(
                    tail(&serial),
                    tail(&parallel),
                    "threads = {threads}, chunk = {chunk:?}"
                );
            }
        }
    }

    #[test]
    fn sweep_with_drops_degrades_not_errors() {
        let cmd = parse_args(&args(&[
            "sweep",
            "--task",
            "broadcast",
            "--n",
            "24",
            "--runs",
            "4",
            "--drop",
            "0.3",
        ]))
        .unwrap();
        let (report, healthy) = run_command_status(&cmd).unwrap();
        assert!(report.contains("dropped:"), "{report}");
        // The health flag mirrors the completion count: exit zero iff
        // every cell finished its task despite the drops.
        assert_eq!(healthy, report.contains("completed:    4/4"), "{report}");
    }

    #[test]
    fn degraded_sweeps_fail_unless_allowed() {
        let base = [
            "sweep",
            "--task",
            "broadcast",
            "--n",
            "24",
            "--runs",
            "2",
            "--drop",
            "0.9",
        ];
        let cmd = parse_args(&args(&base)).unwrap();
        let (report, healthy) = run_command_status(&cmd).unwrap();
        assert!(
            !healthy,
            "90% drop should leave nodes uninformed:\n{report}"
        );
        assert!(!report.contains("completed:    2/2"), "{report}");

        let mut argv = base.to_vec();
        argv.push("--allow-degraded");
        let cmd = parse_args(&args(&argv)).unwrap();
        let (_, healthy) = run_command_status(&cmd).unwrap();
        assert!(healthy, "--allow-degraded must forgive degradation");
    }

    #[test]
    fn sweep_journal_resume_replays_cells() {
        let dir =
            std::env::temp_dir().join(format!("oraclesize-cli-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("wakeup.journal");
        let journal = journal.to_str().unwrap();
        let base = ["sweep", "--task", "wakeup", "--n", "24", "--runs", "6"];
        let run = |extra: &[&str]| {
            let mut argv = base.to_vec();
            argv.extend_from_slice(extra);
            let cmd = parse_args(&args(&argv)).unwrap();
            run_command_status(&cmd).unwrap()
        };
        let (fresh, healthy) = run(&["--journal", journal]);
        assert!(healthy);
        assert!(fresh.contains("6 completed, 0 resumed"), "{fresh}");
        let (resumed, healthy) = run(&["--journal", journal, "--resume"]);
        assert!(healthy);
        assert!(resumed.contains("0 completed, 6 resumed"), "{resumed}");
        // Only the outcome classification (and scheduling telemetry) may
        // differ; every measured number is replayed byte for byte from
        // the checkpoints.
        let tail = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("outcomes:") && !l.starts_with("throughput:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(tail(&fresh), tail(&resumed));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_service_subcommands() {
        let cmd = parse_args(&args(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--journal-dir",
            "ckpt",
            "--jobs",
            "3",
            "--workers",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeArgs {
                addr: "0.0.0.0:9000".to_string(),
                journal_dir: Some("ckpt".to_string()),
                jobs: 3,
                workers: 4,
            })
        );
        let cmd = parse_args(&args(&[
            "work",
            "--connect",
            "10.0.0.1:9000",
            "--threads",
            "8",
            "--die-mid-shard",
            "2",
            "--poll-ms",
            "25",
            "--name",
            "w-a",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Work(WorkArgs {
                connect: "10.0.0.1:9000".to_string(),
                threads: 8,
                journal_dir: None,
                die_mid_shard: Some(2),
                poll_ms: 25,
                name: "w-a".to_string(),
            })
        );
        let cmd = parse_args(&args(&[
            "submit",
            "--spec",
            "t10.json",
            "--out",
            "merged.json",
            "--fresh",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Submit(SubmitArgs {
                connect: "127.0.0.1:7401".to_string(),
                spec: "t10.json".to_string(),
                out: Some("merged.json".to_string()),
                poll_ms: 100,
                fresh: true,
            })
        );
        assert_eq!(
            parse_args(&args(&["spec", "scale", "--large"])).unwrap(),
            Command::Spec(SpecArgs {
                name: "scale".to_string(),
                large: true,
            })
        );
    }

    #[test]
    fn service_subcommands_reject_bad_input() {
        assert!(parse_args(&args(&["serve", "--jobs", "0"])).is_err());
        assert!(parse_args(&args(&["serve", "--wat"])).is_err());
        assert!(parse_args(&args(&["work", "--die-mid-shard", "0"])).is_err());
        assert!(parse_args(&args(&["submit"])).is_err()); // no spec
        assert!(parse_args(&args(&["spec"])).is_err()); // no name
        let err = run_command(&parse_args(&args(&["spec", "t99"])).unwrap()).unwrap_err();
        assert!(err.contains("unknown spec"), "{err}");
    }

    #[test]
    fn spec_subcommand_prints_canonical_parseable_specs() {
        for name in ["t10", "t20-corruption", "t20-drops", "t20-crashes", "scale"] {
            let cmd = parse_args(&args(&["spec", name])).unwrap();
            let text = run_command(&cmd).unwrap();
            let spec = SweepSpec::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name.to_lowercase(), spec.name, "{name}");
            assert!(!spec.cells.is_empty(), "{name}");
            // The printed form is canonical: it re-renders byte for byte.
            assert_eq!(format!("{}\n", spec.render()), text, "{name}");
        }
    }

    #[test]
    fn sweep_flags_lower_into_the_canonical_spec() {
        let cmd = parse_args(&args(&[
            "sweep",
            "--task",
            "broadcast",
            "--family",
            "hypercube",
            "--n",
            "32",
            "--runs",
            "3",
            "--scheduler",
            "random",
            "--drop",
            "0.25",
            "--seed",
            "100",
            "--max-retries",
            "2",
            "--chunk",
            "4",
        ]))
        .unwrap();
        let Command::Sweep(a) = cmd else {
            panic!("not sweep")
        };
        let spec = sweep_spec(&a).unwrap();
        assert_eq!(spec.name, "sweep-broadcast");
        assert_eq!(spec.master_seed, 100);
        assert_eq!(spec.instances.len(), 1);
        assert_eq!(spec.instances[0].family, "hypercube");
        assert_eq!(spec.instances[0].oracle, "light-tree");
        assert_eq!(spec.cells.len(), 3);
        for (k, cell) in spec.cells.iter().enumerate() {
            let cell_seed = 100 + k as u64 + 1;
            assert_eq!(cell.seed, cell_seed);
            assert_eq!(cell.scheme, "scheme-b");
            assert_eq!(cell.mode, "broadcast");
            // The random scheduler and the fault plan are re-seeded per
            // cell, exactly like the pre-spec construction path.
            assert_eq!(
                cell.scheduler,
                Some(SchedulerSpec {
                    kind: "random".to_string(),
                    seed: cell_seed,
                })
            );
            assert_eq!(cell.faults.seed, cell_seed);
            assert_eq!(cell.faults.drop_ppm, 250_000);
            assert_eq!(cell.quiescence_polls, Some(16));
        }
        assert_eq!(spec.knobs.max_retries, 2);
        assert_eq!(spec.knobs.chunk, Some(4));
        // The lowered spec survives the wire format losslessly.
        assert_eq!(SweepSpec::parse(&spec.render()).unwrap(), spec);

        // Fault-free sweeps keep the engine's quiescence default.
        let Command::Sweep(a) =
            parse_args(&args(&["sweep", "--task", "wakeup", "--runs", "2"])).unwrap()
        else {
            panic!("not sweep")
        };
        let spec = sweep_spec(&a).unwrap();
        assert_eq!(spec.instances[0].oracle, "spanning-tree");
        assert_eq!(spec.cells[0].mode, "wakeup");
        assert_eq!(spec.cells[0].quiescence_polls, None);
        assert_eq!(spec.cells[0].faults, FaultSpec::default());
        assert_eq!(spec.cells[0].scheduler, None);
    }

    #[test]
    fn usage_lists_everything() {
        let u = usage();
        for t in Task::NAMES {
            assert!(u.contains(t), "usage missing task {t}");
        }
        assert!(u.contains("sweep"), "usage missing sweep subcommand");
        assert!(u.contains("--threads"), "usage missing --threads");
        assert!(u.contains("--chunk"), "usage missing --chunk");
        assert!(u.contains("trace-diff"), "usage missing trace-diff");
        assert!(u.contains("--out"), "usage missing --out");
        assert!(u.contains("--journal"), "usage missing --journal");
        assert!(u.contains("--resume"), "usage missing --resume");
        assert!(u.contains("--max-retries"), "usage missing --max-retries");
        assert!(u.contains("--cell-timeout"), "usage missing --cell-timeout");
        assert!(
            u.contains("--allow-degraded"),
            "usage missing --allow-degraded"
        );
        for sub in ["spec", "serve", "work", "submit"] {
            assert!(u.contains(sub), "usage missing {sub} subcommand");
        }
        assert!(
            u.contains("--die-mid-shard"),
            "usage missing --die-mid-shard"
        );
        assert!(u.contains("--journal-dir"), "usage missing --journal-dir");
        assert!(u.contains("t20-crashes"), "usage missing spec names");
    }

    #[test]
    fn parse_trace_flags() {
        let cmd = parse_args(&args(&[
            "trace",
            "--task",
            "flood",
            "--family",
            "torus",
            "--n",
            "16",
            "--scheduler",
            "lifo",
            "--drop",
            "0.1",
            "--seed",
            "5",
            "--out",
            "t.jsonl",
        ]))
        .unwrap();
        let Command::Trace(a) = cmd else {
            panic!("not trace")
        };
        assert_eq!(a.task, Task::Flood);
        assert_eq!(a.family, Family::Torus);
        assert_eq!(a.n, 16);
        assert_eq!(a.scheduler, Some(SchedulerKind::Lifo));
        assert_eq!(a.drop, 0.1);
        assert_eq!(a.seed, 5);
        assert_eq!(a.out.as_deref(), Some("t.jsonl"));
    }

    #[test]
    fn trace_rejects_unsupported_input() {
        assert!(parse_args(&args(&["trace"])).is_err()); // no task
        assert!(parse_args(&args(&["trace", "--task", "gossip"])).is_err());
        assert!(parse_args(&args(&["trace", "--task", "flood", "--drop", "2.0"])).is_err());
        assert!(parse_args(&args(&["trace-diff", "only-one.jsonl"])).is_err());
        assert!(parse_args(&args(&["trace-diff", "a", "b", "c"])).is_err());
    }

    #[test]
    fn trace_streams_parseable_deterministic_jsonl() {
        let argv = [
            "trace",
            "--task",
            "broadcast",
            "--family",
            "hypercube",
            "--n",
            "16",
        ];
        let run = || {
            let cmd = parse_args(&args(&argv)).unwrap();
            run_command(&cmd).unwrap()
        };
        let jsonl = run();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            assert!(oraclesize_runtime::json::parses(line), "{line}");
        }
        assert!(jsonl.contains("\"kind\": \"deliver\""), "{jsonl}");
        assert!(jsonl.contains("\"kind\": \"rollup\""), "{jsonl}");
        // Same arguments, same bytes: the artifact is reproducible.
        assert_eq!(jsonl, run());
    }

    #[test]
    fn trace_out_writes_artifact_and_diff_reads_it() {
        let dir = std::env::temp_dir().join("oraclesize-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let left = dir.join("left.jsonl");
        let right = dir.join("right.jsonl");
        let write = |path: &std::path::Path, seed: &str| {
            let cmd = parse_args(&args(&[
                "trace",
                "--task",
                "wakeup",
                "--n",
                "12",
                "--seed",
                seed,
                "--out",
                path.to_str().unwrap(),
            ]))
            .unwrap();
            run_command(&cmd).unwrap()
        };
        let summary = write(&left, "3");
        assert!(summary.contains("wrote:"), "{summary}");
        assert!(summary.contains("all informed"), "{summary}");
        write(&right, "3");

        let diff = |l: &std::path::Path, r: &std::path::Path| {
            let cmd = parse_args(&args(&[
                "trace-diff",
                l.to_str().unwrap(),
                r.to_str().unwrap(),
            ]))
            .unwrap();
            run_command(&cmd).unwrap()
        };
        assert!(diff(&left, &right).contains("traces identical"));

        // A different seed gives a different schedule; the diff names the
        // first diverging line rather than erroring out.
        write(&right, "4");
        assert!(diff(&left, &right).contains("traces diverge at line"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
