//! The `oraclesize` command-line tool: run any task on any family and
//! print the knowledge/communication costs.
//!
//! ```text
//! oraclesize run --family complete --n 64 --task broadcast
//! oraclesize run --family random-sparse --n 128 --task election --scheduler lifo
//! oraclesize run --family grid --n 100 --task spanner --stretch 3
//! oraclesize sweep --task broadcast --n 128 --runs 64 --threads 4 --drop 0.1
//! oraclesize list
//! ```
//!
//! `sweep` builds one `Arc`-shared instance, declares one cell per seeded
//! run, and dispatches the grid to the `oraclesize-runtime` pool —
//! `--threads N` changes wall-clock time only, never the report.

use std::fmt::Write as _;
use std::sync::Arc;

use oraclesize_core::broadcast::{LightTreeOracle, SchemeB};
use oraclesize_core::construction::{
    collect_parent_ports, verify_bfs_tree, verify_mst, BfsTreeOracle, DistributedBfs, MstOracle,
    ZeroMessageTree,
};
use oraclesize_core::election::{
    verify_election, AnnouncedLeader, ElectionOracle, FloodMax, HirschbergSinclair,
};
use oraclesize_core::gossip::{decode_gossip_output, GossipOracle, TreeGossip};
use oraclesize_core::oracle::EmptyOracle;
use oraclesize_core::spanner::{collect_port_sets, verify_spanner, SpannerOracle};
use oraclesize_core::wakeup::{SpanningTreeOracle, TreeWakeup};
use oraclesize_core::{execute, OracleRun};
use oraclesize_graph::families::Family;
use oraclesize_runtime::{drain, run_batch, Aggregate, Instance, Pool, RunRequest};
use oraclesize_sim::protocol::{FloodOnce, Protocol};
use oraclesize_sim::{FaultPlan, SchedulerKind, SimConfig, TaskMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The tasks the CLI can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Theorem 3.1: light-tree oracle + Scheme B.
    Broadcast,
    /// Theorem 2.1: spanning-tree oracle + tree wakeup.
    Wakeup,
    /// Oracle-free flooding baseline.
    Flood,
    /// Tree gossip.
    Gossip,
    /// Oracle-assisted leader election.
    Election,
    /// FloodMax election baseline.
    FloodMax,
    /// Hirschberg–Sinclair ring election (cycle family only).
    HsElection,
    /// Zero-message BFS-tree construction.
    Bfs,
    /// Zero-message MST construction.
    Mst,
    /// Flooding-based distributed BFS baseline.
    DistBfs,
    /// Zero-message t-spanner construction (`--stretch`).
    Spanner,
}

impl Task {
    /// Parses a task name.
    pub fn parse(s: &str) -> Option<Task> {
        Some(match s {
            "broadcast" => Task::Broadcast,
            "wakeup" => Task::Wakeup,
            "flood" => Task::Flood,
            "gossip" => Task::Gossip,
            "election" => Task::Election,
            "floodmax" => Task::FloodMax,
            "hs-election" => Task::HsElection,
            "bfs" => Task::Bfs,
            "mst" => Task::Mst,
            "dist-bfs" => Task::DistBfs,
            "spanner" => Task::Spanner,
            _ => return None,
        })
    }

    /// All task names, for `list` and error messages.
    pub const NAMES: [&'static str; 11] = [
        "broadcast",
        "wakeup",
        "flood",
        "gossip",
        "election",
        "floodmax",
        "hs-election",
        "bfs",
        "mst",
        "dist-bfs",
        "spanner",
    ];
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `run …`
    Run(RunArgs),
    /// `sweep …`
    Sweep(SweepArgs),
    /// `list`
    List,
    /// `help` (also the zero-argument default)
    Help,
}

/// Arguments of the `run` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Graph family.
    pub family: Family,
    /// Approximate size.
    pub n: usize,
    /// Task to execute.
    pub task: Task,
    /// Source / root node.
    pub source: usize,
    /// Asynchronous scheduler; `None` = synchronous.
    pub scheduler: Option<SchedulerKind>,
    /// Erase node identities.
    pub anonymous: bool,
    /// RNG seed (graph generation and random scheduling).
    pub seed: u64,
    /// Spanner stretch.
    pub stretch: usize,
}

/// Arguments of the `sweep` subcommand: a declarative grid of seeded
/// runs over one shared instance, dispatched to the runtime pool.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Graph family.
    pub family: Family,
    /// Approximate size.
    pub n: usize,
    /// Task to sweep (`broadcast`, `wakeup`, or `flood`).
    pub task: Task,
    /// Source / root node.
    pub source: usize,
    /// Cells in the grid (one seeded run each).
    pub runs: usize,
    /// Worker threads for dispatch.
    pub threads: usize,
    /// Asynchronous scheduler; `None` = synchronous. A `random` scheduler
    /// is re-seeded per cell so the cells stay independent.
    pub scheduler: Option<SchedulerKind>,
    /// Per-message drop probability (`0.0` = fault-free).
    pub drop: f64,
    /// RNG seed (graph generation and per-cell derivation).
    pub seed: u64,
}

fn parse_family(s: &str) -> Option<Family> {
    Family::ALL.into_iter().find(|f| f.name() == s)
}

/// Parses command-line arguments (without the program name).
///
/// # Errors
///
/// A usage message describing the problem.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => Ok(Command::List),
        Some("run") => {
            let mut family = Family::RandomSparse;
            let mut n = 64usize;
            let mut task = None;
            let mut source = 0usize;
            let mut scheduler = None;
            let mut anonymous = false;
            let mut seed = 2006u64;
            let mut stretch = 3usize;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--family" => {
                        let v = value("--family")?;
                        family = parse_family(v).ok_or_else(|| format!("unknown family {v:?}"))?;
                    }
                    "--n" => {
                        n = value("--n")?
                            .parse()
                            .map_err(|_| "--n needs an integer".to_string())?;
                    }
                    "--task" => {
                        let v = value("--task")?;
                        task = Some(Task::parse(v).ok_or_else(|| format!("unknown task {v:?}"))?);
                    }
                    "--source" => {
                        source = value("--source")?
                            .parse()
                            .map_err(|_| "--source needs an integer".to_string())?;
                    }
                    "--scheduler" => {
                        let v = value("--scheduler")?;
                        scheduler = Some(match v.as_str() {
                            "fifo" => SchedulerKind::Fifo,
                            "lifo" => SchedulerKind::Lifo,
                            "random" => SchedulerKind::Random { seed },
                            "starve" => SchedulerKind::Starve,
                            other => return Err(format!("unknown scheduler {other:?}")),
                        });
                    }
                    "--anonymous" => anonymous = true,
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|_| "--seed needs an integer".to_string())?;
                    }
                    "--stretch" => {
                        stretch = value("--stretch")?
                            .parse()
                            .map_err(|_| "--stretch needs an integer".to_string())?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let task = task.ok_or("run requires --task".to_string())?;
            Ok(Command::Run(RunArgs {
                family,
                n,
                task,
                source,
                scheduler,
                anonymous,
                seed,
                stretch,
            }))
        }
        Some("sweep") => {
            let mut family = Family::RandomSparse;
            let mut n = 64usize;
            let mut task = None;
            let mut source = 0usize;
            let mut runs = 16usize;
            let mut threads = 1usize;
            let mut scheduler = None;
            let mut drop = 0.0f64;
            let mut seed = 2006u64;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{name} needs a value"))
                };
                match flag.as_str() {
                    "--family" => {
                        let v = value("--family")?;
                        family = parse_family(v).ok_or_else(|| format!("unknown family {v:?}"))?;
                    }
                    "--n" => {
                        n = value("--n")?
                            .parse()
                            .map_err(|_| "--n needs an integer".to_string())?;
                    }
                    "--task" => {
                        let v = value("--task")?;
                        task = Some(Task::parse(v).ok_or_else(|| format!("unknown task {v:?}"))?);
                    }
                    "--source" => {
                        source = value("--source")?
                            .parse()
                            .map_err(|_| "--source needs an integer".to_string())?;
                    }
                    "--runs" => {
                        runs = value("--runs")?
                            .parse()
                            .map_err(|_| "--runs needs an integer".to_string())?;
                    }
                    "--threads" => {
                        threads = value("--threads")?
                            .parse()
                            .map_err(|_| "--threads needs an integer".to_string())?;
                    }
                    "--scheduler" => {
                        let v = value("--scheduler")?;
                        scheduler = Some(match v.as_str() {
                            "fifo" => SchedulerKind::Fifo,
                            "lifo" => SchedulerKind::Lifo,
                            "random" => SchedulerKind::Random { seed },
                            "starve" => SchedulerKind::Starve,
                            other => return Err(format!("unknown scheduler {other:?}")),
                        });
                    }
                    "--drop" => {
                        drop = value("--drop")?
                            .parse()
                            .map_err(|_| "--drop needs a probability".to_string())?;
                        if !(0.0..=1.0).contains(&drop) {
                            return Err("--drop must be within [0, 1]".into());
                        }
                    }
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|_| "--seed needs an integer".to_string())?;
                    }
                    other => return Err(format!("unknown flag {other:?}")),
                }
            }
            let task = task.ok_or("sweep requires --task".to_string())?;
            if !matches!(task, Task::Broadcast | Task::Wakeup | Task::Flood) {
                return Err("sweep supports --task broadcast, wakeup, or flood".into());
            }
            if runs == 0 {
                return Err("--runs must be at least 1".into());
            }
            Ok(Command::Sweep(SweepArgs {
                family,
                n,
                task,
                source,
                runs,
                threads,
                scheduler,
                drop,
                seed,
            }))
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    }
}

/// The `help` text.
pub fn usage() -> String {
    format!(
        "oraclesize — run oracle-assisted communication tasks (PODC 2006)\n\n\
         USAGE:\n  oraclesize run --task <task> [--family <family>] [--n <size>]\n\
         \x20                [--source <node>] [--scheduler fifo|lifo|random|starve]\n\
         \x20                [--anonymous] [--seed <u64>] [--stretch <t>]\n\
         \x20 oraclesize sweep --task broadcast|wakeup|flood [--runs <k>]\n\
         \x20                [--threads <t>] [--drop <p>] [--family <family>]\n\
         \x20                [--n <size>] [--scheduler <s>] [--seed <u64>]\n\
         \x20 oraclesize list\n\n\
         TASKS:    {}\nFAMILIES: {}\n",
        Task::NAMES.join(" "),
        Family::ALL.map(|f| f.name()).join(" ")
    )
}

/// Executes a parsed command and renders its report.
///
/// # Errors
///
/// Engine errors, verification failures, or invalid combinations (e.g.
/// `hs-election` off a cycle).
pub fn run_command(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(usage()),
        Command::List => {
            let mut out = String::new();
            let _ = writeln!(out, "families: {}", Family::ALL.map(|f| f.name()).join(" "));
            let _ = writeln!(out, "tasks:    {}", Task::NAMES.join(" "));
            Ok(out)
        }
        Command::Run(args) => run_task(args),
        Command::Sweep(args) => run_sweep(args),
    }
}

fn run_task(args: &RunArgs) -> Result<String, String> {
    if args.task == Task::HsElection && args.family != Family::Cycle {
        return Err("hs-election requires --family cycle".into());
    }
    let mut rng = StdRng::seed_from_u64(args.seed);
    let g = args.family.build(args.n, &mut rng);
    if args.source >= g.num_nodes() {
        return Err(format!(
            "--source {} out of range (graph has {} nodes)",
            args.source,
            g.num_nodes()
        ));
    }
    let mut config = match args.scheduler {
        Some(kind) => SimConfig::asynchronous(kind),
        None => SimConfig::default(),
    };
    config.anonymous = args.anonymous;
    if matches!(args.task, Task::Wakeup) {
        config.mode = TaskMode::Wakeup;
    }
    if args.anonymous
        && matches!(
            args.task,
            Task::Gossip | Task::Election | Task::FloodMax | Task::HsElection
        )
    {
        return Err("this task needs node identities; drop --anonymous".into());
    }

    let exec = |oracle: &dyn oraclesize_core::Oracle,
                protocol: &dyn oraclesize_sim::Protocol|
     -> Result<OracleRun, String> {
        execute(&g, args.source, oracle, protocol, &config).map_err(|e| e.to_string())
    };

    let (run, verification) = match args.task {
        Task::Broadcast => {
            let r = exec(&LightTreeOracle, &SchemeB)?;
            let v = if r.outcome.all_informed() {
                "all informed"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Wakeup => {
            let r = exec(&SpanningTreeOracle::default(), &TreeWakeup)?;
            let v = if r.outcome.all_informed() {
                "all informed"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Flood => {
            let r = exec(&EmptyOracle, &FloodOnce)?;
            let v = if r.outcome.all_informed() {
                "all informed"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Gossip => {
            let r = exec(&GossipOracle::default(), &TreeGossip)?;
            let complete = r.outcome.outputs.iter().all(|o| {
                o.as_ref()
                    .and_then(decode_gossip_output)
                    .is_some_and(|s| s.len() == g.num_nodes())
            });
            let v = if complete {
                "all nodes know all values"
            } else {
                "INCOMPLETE"
            };
            (r, v.to_string())
        }
        Task::Election => {
            let r = exec(&ElectionOracle, &AnnouncedLeader)?;
            let leader = verify_election(&g, &r.outcome.outputs, false)?;
            (r, format!("leader {leader} agreed everywhere"))
        }
        Task::FloodMax => {
            let r = exec(&EmptyOracle, &FloodMax)?;
            let leader = verify_election(&g, &r.outcome.outputs, true)?;
            (r, format!("maximum {leader} elected everywhere"))
        }
        Task::HsElection => {
            let r = exec(&EmptyOracle, &HirschbergSinclair)?;
            let leader = verify_election(&g, &r.outcome.outputs, true)?;
            (r, format!("maximum {leader} elected everywhere"))
        }
        Task::Bfs => {
            let r = exec(&BfsTreeOracle, &ZeroMessageTree)?;
            let ports =
                collect_parent_ports(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            verify_bfs_tree(&g, args.source, &ports)?;
            (r, "verified BFS tree".to_string())
        }
        Task::Mst => {
            let r = exec(&MstOracle, &ZeroMessageTree)?;
            let ports =
                collect_parent_ports(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            verify_mst(&g, args.source, &ports)?;
            (r, "verified minimum spanning tree".to_string())
        }
        Task::DistBfs => {
            let r = exec(&EmptyOracle, &DistributedBfs)?;
            let ports =
                collect_parent_ports(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            let v = if args.scheduler.is_none() {
                verify_bfs_tree(&g, args.source, &ports)?;
                "verified BFS tree".to_string()
            } else {
                "spanning tree (async: BFS property not guaranteed)".to_string()
            };
            (r, v)
        }
        Task::Spanner => {
            let r = exec(&SpannerOracle::new(args.stretch.max(1)), &ZeroMessageTree)?;
            let sets = collect_port_sets(&r.outcome.outputs).ok_or("outputs failed to decode")?;
            let edges = verify_spanner(&g, &sets, args.stretch.max(1))?;
            (
                r,
                format!("verified {}-spanner with {edges} edges", args.stretch),
            )
        }
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph:        {} (n = {}, m = {})",
        args.family.name(),
        g.num_nodes(),
        g.num_edges()
    );
    let _ = writeln!(
        out,
        "execution:    {}{}",
        args.scheduler.map_or("synchronous", |k| k.name()),
        if args.anonymous { ", anonymous" } else { "" }
    );
    let _ = writeln!(out, "oracle bits:  {}", run.oracle_bits);
    let _ = writeln!(out, "messages:     {}", run.outcome.metrics.messages);
    let _ = writeln!(out, "payload bits: {}", run.outcome.metrics.payload_bits);
    let _ = writeln!(out, "rounds:       {}", run.outcome.metrics.rounds);
    let _ = writeln!(out, "result:       {verification}");
    Ok(out)
}

/// Builds one shared instance, declares `runs` seeded cells, dispatches
/// them across the pool, and folds the reports in cell order — the output
/// is identical at any `--threads` value.
fn run_sweep(args: &SweepArgs) -> Result<String, String> {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let g = args.family.build(args.n, &mut rng).into_shared();
    if args.source >= g.num_nodes() {
        return Err(format!(
            "--source {} out of range (graph has {} nodes)",
            args.source,
            g.num_nodes()
        ));
    }
    let (instance, protocol): (Arc<Instance>, Arc<dyn Protocol + Send + Sync>) = match args.task {
        Task::Broadcast => (
            Instance::build(Arc::clone(&g), args.source, &LightTreeOracle),
            Arc::new(SchemeB),
        ),
        Task::Wakeup => (
            Instance::build(Arc::clone(&g), args.source, &SpanningTreeOracle::default()),
            Arc::new(TreeWakeup),
        ),
        Task::Flood => (
            Instance::build(Arc::clone(&g), args.source, &EmptyOracle),
            Arc::new(FloodOnce),
        ),
        _ => return Err("sweep supports --task broadcast, wakeup, or flood".into()),
    };

    let requests: Vec<RunRequest> = (0..args.runs)
        .map(|k| {
            let cell_seed = args.seed.wrapping_add(k as u64 + 1);
            let mut config = match args.scheduler {
                Some(SchedulerKind::Random { .. }) => {
                    // Re-seed per cell so the cells sample different
                    // delivery orders while staying reproducible.
                    SimConfig::asynchronous(SchedulerKind::Random { seed: cell_seed })
                }
                Some(kind) => SimConfig::asynchronous(kind),
                None => SimConfig::default(),
            };
            if args.task == Task::Wakeup {
                config.mode = TaskMode::Wakeup;
            }
            if args.drop > 0.0 {
                config.faults = FaultPlan::message_faults(cell_seed, args.drop, 0.0, 0.0);
                config.max_quiescence_polls = 16;
            }
            RunRequest::new(Arc::clone(&instance), Arc::clone(&protocol), config)
        })
        .collect();

    let reports = run_batch(&Pool::new(args.threads), &requests);
    let mut agg = Aggregate::new();
    drain(&mut agg, &reports);
    if agg.errors > 0 {
        let first = reports
            .iter()
            .find_map(|r| r.result.as_ref().err())
            .expect("errors counted");
        return Err(format!(
            "{} of {} cells aborted: {first}",
            agg.errors, agg.cells
        ));
    }

    let cells = agg.cells;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "graph:        {} (n = {}, m = {})",
        args.family.name(),
        g.num_nodes(),
        g.num_edges()
    );
    let _ = writeln!(
        out,
        "sweep:        {} cells, {} thread(s), drop = {:.2}",
        cells,
        args.threads.max(1),
        args.drop
    );
    let _ = writeln!(
        out,
        "execution:    {}",
        args.scheduler.map_or("synchronous", |k| k.name())
    );
    let _ = writeln!(out, "oracle bits:  {}", agg.oracle_bits / cells);
    let _ = writeln!(out, "completed:    {}/{}", agg.completed, cells);
    let _ = writeln!(
        out,
        "messages:     total {}, mean {:.1}, max {}",
        agg.totals.messages,
        agg.totals.messages as f64 / cells as f64,
        agg.max_messages
    );
    let _ = writeln!(
        out,
        "rounds:       total {}, max {}",
        agg.totals.rounds, agg.max_rounds
    );
    if args.drop > 0.0 {
        let _ = writeln!(out, "dropped:      {}", agg.totals.faults.dropped);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_help_and_list() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["list"])).unwrap(), Command::List);
        assert!(parse_args(&args(&["bogus"])).is_err());
    }

    #[test]
    fn parse_run_defaults_and_flags() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "broadcast",
            "--family",
            "complete",
            "--n",
            "32",
            "--scheduler",
            "lifo",
            "--anonymous",
            "--seed",
            "7",
        ]))
        .unwrap();
        let Command::Run(a) = cmd else {
            panic!("not run")
        };
        assert_eq!(a.task, Task::Broadcast);
        assert_eq!(a.family, Family::Complete);
        assert_eq!(a.n, 32);
        assert_eq!(a.scheduler, Some(SchedulerKind::Lifo));
        assert!(a.anonymous);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_args(&args(&["run"])).is_err()); // no task
        assert!(parse_args(&args(&["run", "--task", "nope"])).is_err());
        assert!(parse_args(&args(&["run", "--task", "wakeup", "--family", "nope"])).is_err());
        assert!(parse_args(&args(&["run", "--task", "wakeup", "--n"])).is_err());
        assert!(parse_args(&args(&["run", "--task", "wakeup", "--wat"])).is_err());
    }

    #[test]
    fn every_task_runs_and_verifies() {
        for task in Task::NAMES {
            let family = if task == "hs-election" {
                "cycle"
            } else {
                "random-sparse"
            };
            let cmd = parse_args(&args(&[
                "run", "--task", task, "--family", family, "--n", "24",
            ]))
            .unwrap();
            let report = run_command(&cmd).unwrap_or_else(|e| panic!("{task}: {e}"));
            assert!(report.contains("result:"), "{task}");
            assert!(!report.contains("INCOMPLETE"), "{task}");
        }
    }

    #[test]
    fn hs_election_requires_cycle() {
        let cmd = parse_args(&args(&["run", "--task", "hs-election", "--family", "grid"])).unwrap();
        assert!(run_command(&cmd).is_err());
    }

    #[test]
    fn anonymous_labeled_tasks_rejected() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "gossip",
            "--anonymous",
            "--family",
            "cycle",
        ]))
        .unwrap();
        assert!(run_command(&cmd).is_err());
    }

    #[test]
    fn async_runs_work() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "broadcast",
            "--family",
            "hypercube",
            "--n",
            "32",
            "--scheduler",
            "random",
        ]))
        .unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("all informed"));
    }

    #[test]
    fn starve_scheduler_is_exposed() {
        let cmd = parse_args(&args(&[
            "run",
            "--task",
            "broadcast",
            "--family",
            "cycle",
            "--n",
            "16",
            "--scheduler",
            "starve",
        ]))
        .unwrap();
        let Command::Run(ref a) = cmd else {
            panic!("not run")
        };
        assert_eq!(a.scheduler, Some(SchedulerKind::Starve));
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("all informed"));
    }

    #[test]
    fn parse_sweep_flags() {
        let cmd = parse_args(&args(&[
            "sweep",
            "--task",
            "flood",
            "--family",
            "cycle",
            "--n",
            "20",
            "--runs",
            "8",
            "--threads",
            "3",
            "--drop",
            "0.25",
            "--seed",
            "11",
        ]))
        .unwrap();
        let Command::Sweep(a) = cmd else {
            panic!("not sweep")
        };
        assert_eq!(a.task, Task::Flood);
        assert_eq!(a.family, Family::Cycle);
        assert_eq!(a.runs, 8);
        assert_eq!(a.threads, 3);
        assert_eq!(a.drop, 0.25);
        assert_eq!(a.seed, 11);
    }

    #[test]
    fn sweep_rejects_unsupported_input() {
        assert!(parse_args(&args(&["sweep"])).is_err()); // no task
        assert!(parse_args(&args(&["sweep", "--task", "gossip"])).is_err());
        assert!(parse_args(&args(&["sweep", "--task", "flood", "--drop", "1.5"])).is_err());
        assert!(parse_args(&args(&["sweep", "--task", "flood", "--runs", "0"])).is_err());
    }

    #[test]
    fn sweep_output_is_thread_count_invariant() {
        let base = ["sweep", "--task", "wakeup", "--n", "24", "--runs", "6"];
        let serial = {
            let cmd = parse_args(&args(&base)).unwrap();
            run_command(&cmd).unwrap()
        };
        assert!(serial.contains("completed:    6/6"), "{serial}");
        for threads in ["2", "8"] {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend(["--threads", threads]);
            let cmd = parse_args(&args(&argv)).unwrap();
            let parallel = run_command(&cmd).unwrap();
            // The thread count is echoed in the header; everything below
            // it must match the serial run byte for byte.
            let tail = |s: &str| {
                s.lines()
                    .filter(|l| !l.starts_with("sweep:"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(tail(&serial), tail(&parallel), "threads = {threads}");
        }
    }

    #[test]
    fn sweep_with_drops_degrades_not_errors() {
        let cmd = parse_args(&args(&[
            "sweep",
            "--task",
            "broadcast",
            "--n",
            "24",
            "--runs",
            "4",
            "--drop",
            "0.3",
        ]))
        .unwrap();
        let report = run_command(&cmd).unwrap();
        assert!(report.contains("dropped:"), "{report}");
    }

    #[test]
    fn usage_lists_everything() {
        let u = usage();
        for t in Task::NAMES {
            assert!(u.contains(t), "usage missing task {t}");
        }
        assert!(u.contains("sweep"), "usage missing sweep subcommand");
        assert!(u.contains("--threads"), "usage missing --threads");
    }
}
