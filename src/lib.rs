//! # oraclesize
//!
//! A full reproduction of **"Oracle size: a new measure of difficulty for
//! communication tasks"** (Fraigniaud, Ilcinkas, Pelc; PODC 2006) as a Rust
//! workspace: the port-labeled network model, advice oracles, the wakeup
//! and broadcast schemes with their size/message guarantees, the
//! edge-discovery adversary and counting machinery behind both lower
//! bounds, and the experiment harness that regenerates every result.
//!
//! This crate re-exports the workspace members under stable module names:
//!
//! | module | contents |
//! |---|---|
//! | [`bits`] | bit strings and self-delimiting advice codecs |
//! | [`graph`] | port-labeled graphs, families, gadgets, spanning trees |
//! | [`sim`] | the message-passing execution engine |
//! | [`core`] | oracles and dissemination schemes (the paper's results) |
//! | [`lowerbound`] | adversary, counting bounds, trade-off experiments |
//! | [`analysis`] | model fitting, statistics, table rendering |
//! | [`runtime`] | worker pool + deterministic batch/sweep execution |
//! | [`bench`] | experiment grids and the committed `BENCH_*.json` artifacts |
//! | [`service`] | distributed sweep server/workers over a framed protocol |
//!
//! ## Quickstart
//!
//! ```
//! use oraclesize::prelude::*;
//!
//! // Broadcast on a 64-node hypercube with the 8n-bit oracle of Thm 3.1.
//! let g = families::hypercube(6);
//! let run = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default())?;
//! assert!(run.outcome.all_informed());
//! assert!(run.oracle_bits <= 8 * 64);
//! # Ok::<(), oraclesize::sim::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use oraclesize_analysis as analysis;
pub use oraclesize_bench as bench;
pub use oraclesize_bits as bits;
pub use oraclesize_core as core;
pub use oraclesize_explore as explore;
pub use oraclesize_graph as graph;
pub use oraclesize_lowerbound as lowerbound;
pub use oraclesize_runtime as runtime;
pub use oraclesize_service as service;
pub use oraclesize_sim as sim;

/// The most common imports, for examples and downstream experiments.
pub mod prelude {
    pub use oraclesize_core::baselines::{FullMapOracle, MapWakeup};
    pub use oraclesize_core::broadcast::{LightTreeOracle, SchemeB};
    pub use oraclesize_core::construction::{
        BfsTreeOracle, DistributedBfs, MstOracle, ZeroMessageTree,
    };
    pub use oraclesize_core::election::{AnnouncedLeader, ElectionOracle, FloodMax};
    pub use oraclesize_core::gossip::{GossipOracle, TreeGossip};
    pub use oraclesize_core::neighborhood::NeighborhoodOracle;
    pub use oraclesize_core::oracle::EmptyOracle;
    pub use oraclesize_core::wakeup::{SpanningTreeOracle, TreeWakeup};
    pub use oraclesize_core::{execute, OracleRun};
    pub use oraclesize_graph::families;
    pub use oraclesize_graph::{PortGraph, PortGraphBuilder, RootedTree};
    pub use oraclesize_runtime::{run_batch, JsonlSink, Pool, RunRequest};
    pub use oraclesize_sim::protocol::FloodOnce;
    pub use oraclesize_sim::{
        advice_size, run, run_streamed, Instance, Oracle, RunMetrics, SchedulerKind, SimConfig,
        TaskMode, TraceSpec,
    };
}
