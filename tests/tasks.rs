//! Integration: the extended task suite (gossip, election, construction,
//! exploration) across crates — every §1.1/§1.2 task end to end, with
//! outputs verified by independent checkers.

use oraclesize::core::construction::{
    collect_parent_ports, verify_bfs_tree, verify_mst, BfsTreeOracle, DistributedBfs, MstOracle,
    ZeroMessageTree,
};
use oraclesize::core::election::{verify_election, AnnouncedLeader, ElectionOracle, FloodMax};
use oraclesize::core::gossip::{decode_gossip_output, GossipOracle, TreeGossip};
use oraclesize::explore::agent::{walk, WalkConfig};
use oraclesize::explore::oracle::tour_advice;
use oraclesize::explore::strategies::{DfsBacktrack, GuidedTour};
use oraclesize::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_tasks_complete_on_the_same_network() {
    let mut rng = StdRng::seed_from_u64(101);
    let g = families::random_connected(72, 0.15, &mut rng);
    let n = g.num_nodes();

    // Gossip: everyone learns everything, 2(n−1) messages.
    let gossip = execute(
        &g,
        0,
        &GossipOracle::default(),
        &TreeGossip,
        &SimConfig::default(),
    )
    .unwrap();
    assert_eq!(gossip.outcome.metrics.messages, 2 * (n as u64 - 1));
    for out in &gossip.outcome.outputs {
        let set = decode_gossip_output(out.as_ref().unwrap()).unwrap();
        assert_eq!(set.len(), n);
    }

    // Election: n−1 messages with the oracle, agreement verified.
    let election = execute(
        &g,
        5,
        &ElectionOracle,
        &AnnouncedLeader,
        &SimConfig::default(),
    )
    .unwrap();
    assert_eq!(election.outcome.metrics.messages, n as u64 - 1);
    assert_eq!(
        verify_election(&g, &election.outcome.outputs, false).unwrap(),
        g.label(5)
    );

    // Construction: zero messages, verified BFS tree and MST.
    let bfs = execute(
        &g,
        0,
        &BfsTreeOracle,
        &ZeroMessageTree,
        &SimConfig::default(),
    )
    .unwrap();
    assert_eq!(bfs.outcome.metrics.messages, 0);
    verify_bfs_tree(&g, 0, &collect_parent_ports(&bfs.outcome.outputs).unwrap()).unwrap();

    let mst = execute(&g, 0, &MstOracle, &ZeroMessageTree, &SimConfig::default()).unwrap();
    verify_mst(&g, 0, &collect_parent_ports(&mst.outcome.outputs).unwrap()).unwrap();

    // Exploration: exactly 2(n−1) moves with the tour oracle.
    let tour = walk(
        &g,
        0,
        &tour_advice(&g, 0),
        &mut GuidedTour::new(),
        &WalkConfig::default(),
    );
    assert!(tour.covered_all);
    assert_eq!(tour.moves, 2 * (n as u64 - 1));
}

#[test]
fn task_oracle_sizes_ranked_by_information_content() {
    // On a fixed dense network: election flag+tree ≈ wakeup tree <
    // gossip (adds parent ports) ≪ neighborhood(1) ≪ full map.
    use oraclesize::core::neighborhood::NeighborhoodOracle;
    let g = families::complete_rotational(64);
    let broadcast = advice_size(&LightTreeOracle.advise(&g, 0));
    let wakeup = advice_size(&SpanningTreeOracle::default().advise(&g, 0));
    let gossip = advice_size(&GossipOracle::default().advise(&g, 0));
    let ball1 = advice_size(&NeighborhoodOracle::new(1).advise(&g, 0));
    let full = advice_size(&FullMapOracle.advise(&g, 0));
    assert!(broadcast < wakeup, "{broadcast} vs {wakeup}");
    assert!(wakeup < gossip + 8 * 64, "{wakeup} vs {gossip}");
    assert!(gossip < ball1, "{gossip} vs {ball1}");
    // On K_n the radius-1 ball IS the whole graph; the two full-topology
    // encodings differ only by codec (γ vs fixed-width), within 2×.
    assert!(ball1 <= 2 * full, "{ball1} vs {full}");
    assert!(full <= 2 * ball1, "{full} vs {ball1}");
}

#[test]
fn advice_free_comparators_cost_strictly_more_messages() {
    let mut rng = StdRng::seed_from_u64(102);
    let g = families::random_connected(48, 0.3, &mut rng);
    let n = g.num_nodes() as u64;

    let floodmax = execute(&g, 0, &EmptyOracle, &FloodMax, &SimConfig::default()).unwrap();
    verify_election(&g, &floodmax.outcome.outputs, true).unwrap();
    assert!(floodmax.outcome.metrics.messages > 4 * n);

    let dbfs = execute(&g, 0, &EmptyOracle, &DistributedBfs, &SimConfig::default()).unwrap();
    verify_bfs_tree(&g, 0, &collect_parent_ports(&dbfs.outcome.outputs).unwrap()).unwrap();
    assert!(dbfs.outcome.metrics.messages > 2 * n);

    let empty = oraclesize::sim::testkit::no_advice(g.num_nodes());
    let dfs = walk(
        &g,
        0,
        &empty,
        &mut DfsBacktrack::new(),
        &WalkConfig::default(),
    );
    assert!(dfs.covered_all);
    assert!(dfs.moves > 2 * (n - 1));
}

#[test]
fn tasks_work_async_and_with_every_scheduler() {
    let mut rng = StdRng::seed_from_u64(103);
    let g = families::random_connected(40, 0.2, &mut rng);
    let n = g.num_nodes();
    for kind in SchedulerKind::sweep(21) {
        let cfg = SimConfig::broadcast().with_scheduler(kind);
        let gossip = execute(&g, 0, &GossipOracle::default(), &TreeGossip, &cfg).unwrap();
        assert_eq!(
            gossip.outcome.metrics.messages,
            2 * (n as u64 - 1),
            "{}",
            kind.name()
        );
        let election = execute(&g, 3, &ElectionOracle, &AnnouncedLeader, &cfg).unwrap();
        verify_election(&g, &election.outcome.outputs, false).unwrap();
        let floodmax = execute(&g, 0, &EmptyOracle, &FloodMax, &cfg).unwrap();
        verify_election(&g, &floodmax.outcome.outputs, true).unwrap();
    }
}

#[test]
fn single_node_degenerate_cases() {
    let g = PortGraph::from_adjacency(vec![vec![]]).unwrap();
    let gossip = execute(
        &g,
        0,
        &GossipOracle::default(),
        &TreeGossip,
        &SimConfig::default(),
    )
    .unwrap();
    assert_eq!(gossip.outcome.metrics.messages, 0);
    let election = execute(
        &g,
        0,
        &ElectionOracle,
        &AnnouncedLeader,
        &SimConfig::default(),
    )
    .unwrap();
    assert_eq!(
        verify_election(&g, &election.outcome.outputs, true).unwrap(),
        0
    );
    let bfs = execute(
        &g,
        0,
        &BfsTreeOracle,
        &ZeroMessageTree,
        &SimConfig::default(),
    )
    .unwrap();
    verify_bfs_tree(&g, 0, &collect_parent_ports(&bfs.outcome.outputs).unwrap()).unwrap();
}
