//! Integration: Theorem 2.1 end to end.
//!
//! "There exists an oracle of size O(n log n) permitting the wakeup with a
//! linear number of messages of networks with at most n nodes."
//!
//! The constructive content is sharper than the statement: the spanning
//! tree oracle uses `n log n + o(n log n)` bits and the scheme uses
//! *exactly* `n − 1` messages, on every network, under every scheduler,
//! anonymously, with zero-payload messages.

use oraclesize::analysis::fit::{best_model, Model};
use oraclesize::graph::spanning::TreeAlgorithm;
use oraclesize::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn exactly_n_minus_1_messages_across_families_sizes_sources() {
    let mut rng = StdRng::seed_from_u64(1);
    for fam in families::Family::ALL {
        for n in [8usize, 31, 64, 100] {
            let g = fam.build(n, &mut rng);
            let nodes = g.num_nodes();
            for source in [0, nodes / 2, nodes - 1] {
                let run = execute(
                    &g,
                    source,
                    &SpanningTreeOracle::default(),
                    &TreeWakeup,
                    &SimConfig::wakeup(),
                )
                .unwrap();
                assert!(
                    run.outcome.all_informed(),
                    "{} n={nodes} source={source}",
                    fam.name()
                );
                assert_eq!(
                    run.outcome.metrics.messages,
                    (nodes - 1) as u64,
                    "{} n={nodes} source={source}",
                    fam.name()
                );
            }
        }
    }
}

#[test]
fn oracle_size_fits_n_log_n_not_n() {
    // On stars rooted at a leaf... any high-branching family: the complete
    // graph's BFS tree from the source is a star, whose advice is
    // (n−1)·⌈log n⌉ bits at the hub — the n log n shape in its purest form.
    let mut ns = Vec::new();
    let mut bits = Vec::new();
    for k in 4..=11u32 {
        let n = 1usize << k;
        let g = families::complete_rotational(n);
        let advice = SpanningTreeOracle::default().advise(&g, 0);
        ns.push(n as f64);
        bits.push(advice_size(&advice) as f64);
    }
    let ranked = best_model(&ns, &bits);
    assert_eq!(ranked[0].model, Model::NLogN, "best fit {:?}", ranked[0]);
    assert!(ranked[0].r_squared > 0.999);
    let linear = ranked.iter().find(|f| f.model == Model::Linear).unwrap();
    assert!(ranked[0].r_squared > linear.r_squared);
}

#[test]
fn robust_under_every_scheduler_and_anonymity() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = families::random_connected(60, 0.15, &mut rng);
    for kind in SchedulerKind::sweep(99) {
        let cfg = SimConfig::wakeup()
            .with_scheduler(kind)
            .with_anonymous(true)
            .with_max_message_bits(0);
        let run = execute(&g, 5, &SpanningTreeOracle::default(), &TreeWakeup, &cfg).unwrap();
        assert!(run.outcome.all_informed(), "{}", kind.name());
        assert_eq!(run.outcome.metrics.messages, 59);
        assert_eq!(run.outcome.metrics.payload_bits, 0);
    }
}

#[test]
fn every_tree_algorithm_gives_valid_oracle() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = families::lollipop(50);
    for alg in TreeAlgorithm::ALL {
        let oracle = SpanningTreeOracle {
            algorithm: alg,
            seed: 7,
        };
        let run = execute(&g, 0, &oracle, &TreeWakeup, &SimConfig::wakeup()).unwrap();
        assert!(run.outcome.all_informed(), "{}", alg.name());
        assert_eq!(run.outcome.metrics.messages, 49);
    }
    let _ = &mut rng;
}

#[test]
fn full_map_oracle_matches_message_count_at_huge_size_cost() {
    let g = families::complete_rotational(32);
    let tree = execute(
        &g,
        0,
        &SpanningTreeOracle::default(),
        &TreeWakeup,
        &SimConfig::wakeup(),
    )
    .unwrap();
    let map = execute(&g, 0, &FullMapOracle, &MapWakeup, &SimConfig::wakeup()).unwrap();
    assert_eq!(tree.outcome.metrics.messages, map.outcome.metrics.messages);
    assert!(map.oracle_bits > 50 * tree.oracle_bits);
}
