//! Integration: Theorem 3.1 / Claims 3.1, 3.2 end to end.
//!
//! "There exists an oracle of size O(n) permitting the broadcast with a
//! linear number of messages in networks with at most n nodes."

use oraclesize::analysis::fit::{best_model, Model};
use oraclesize::core::broadcast::scheme_b_message_bound;
use oraclesize::graph::spanning::{light_tree, TreeAlgorithm};
use oraclesize::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn broadcast_linear_messages_and_8n_bits_everywhere() {
    let mut rng = StdRng::seed_from_u64(31);
    for fam in families::Family::ALL {
        for n in [8usize, 33, 77, 128] {
            let g = fam.build(n, &mut rng);
            let nodes = g.num_nodes();
            let run = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default()).unwrap();
            assert!(run.outcome.all_informed(), "{} n={nodes}", fam.name());
            assert!(
                run.oracle_bits <= 8 * nodes as u64,
                "{} n={nodes}: {} bits",
                fam.name(),
                run.oracle_bits
            );
            assert!(
                run.outcome.metrics.messages <= scheme_b_message_bound(nodes),
                "{} n={nodes}: {} messages",
                fam.name(),
                run.outcome.metrics.messages
            );
        }
    }
}

#[test]
fn oracle_size_fits_linear_not_n_log_n() {
    let mut ns = Vec::new();
    let mut bits = Vec::new();
    for k in 4..=11u32 {
        let n = 1usize << k;
        let g = families::complete_rotational(n);
        let advice = LightTreeOracle.advise(&g, 0);
        ns.push(n as f64);
        bits.push(advice_size(&advice) as f64);
    }
    let ranked = best_model(&ns, &bits);
    assert_eq!(ranked[0].model, Model::Linear, "best fit {:?}", ranked[0]);
    assert!(ranked[0].r_squared > 0.999);
}

#[test]
fn claim_3_1_light_tree_beats_other_trees_on_dense_graphs() {
    // The light tree's contribution stays ≤ 4n; BFS trees on the complete
    // graph (a star at the source, whose edge weights sweep 0..n/2) and
    // random spanning trees blow past it for large n. (DFS happens to be
    // cheap here — it follows port-0 chains — which is itself a datapoint:
    // no fixed classical tree is *uniformly* light, the phased
    // construction is what guarantees the bound.)
    let n = 256;
    let g = families::complete_rotational(n);
    let light = light_tree(&g, 0).contribution(&g);
    assert!(light <= 4 * n as u64);
    let mut rng = StdRng::seed_from_u64(32);
    let bfs = TreeAlgorithm::Bfs.build(&g, 0, &mut rng).contribution(&g);
    let random = TreeAlgorithm::Random
        .build(&g, 0, &mut rng)
        .contribution(&g);
    assert!(bfs > light, "BFS contribution {bfs} ≤ light tree {light}");
    assert!(bfs > 4 * n as u64, "BFS should violate the 4n bound");
    assert!(
        random > light,
        "random-tree contribution {random} ≤ light tree {light}"
    );
}

#[test]
fn broadcast_beats_flooding_on_gadget_graphs() {
    // On G_{n,S,C} (Theorem 3.2's family) flooding pays for every clique
    // edge; Scheme B stays linear.
    let mut rng = StdRng::seed_from_u64(33);
    let (g, _, _) = oraclesize::graph::gadgets::random_clique_gadget(32, 4, &mut rng);
    let nodes = g.num_nodes();

    let flood = execute(&g, 0, &EmptyOracle, &FloodOnce, &SimConfig::default()).unwrap();
    let scheme_b = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default()).unwrap();
    assert!(flood.outcome.all_informed());
    assert!(scheme_b.outcome.all_informed());
    assert!(
        flood.outcome.metrics.messages > 3 * scheme_b.outcome.metrics.messages,
        "flooding {} vs scheme B {}",
        flood.outcome.metrics.messages,
        scheme_b.outcome.metrics.messages
    );
    assert!(scheme_b.outcome.metrics.messages <= scheme_b_message_bound(nodes));
}

#[test]
fn scheme_b_robust_under_async_and_anonymity() {
    let mut rng = StdRng::seed_from_u64(34);
    let g = families::random_connected(80, 0.1, &mut rng);
    for kind in SchedulerKind::sweep(5) {
        let cfg = SimConfig::broadcast()
            .with_scheduler(kind)
            .with_anonymous(true)
            .with_max_message_bits(0);
        let run = execute(&g, 3, &LightTreeOracle, &SchemeB, &cfg).unwrap();
        assert!(run.outcome.all_informed(), "{}", kind.name());
        assert!(run.outcome.metrics.messages <= scheme_b_message_bound(80));
    }
}

#[test]
fn source_position_does_not_break_bounds() {
    let g = families::lollipop(64);
    for source in (0..64).step_by(7) {
        let run = execute(
            &g,
            source,
            &LightTreeOracle,
            &SchemeB,
            &SimConfig::default(),
        )
        .unwrap();
        assert!(run.outcome.all_informed(), "source {source}");
        assert!(run.oracle_bits <= 8 * 64);
        assert!(run.outcome.metrics.messages <= scheme_b_message_bound(64));
    }
}
