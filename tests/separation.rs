//! Integration: the paper's headline claim as a single test suite — an
//! efficient wakeup requires strictly more knowledge than an efficient
//! broadcast.

use oraclesize::analysis::fit::{best_model, fit_model, Model};
use oraclesize::graph::gadgets;
use oraclesize::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Collects (nodes, wakeup bits, broadcast bits) over a size sweep of the
/// Theorem 2.2 construction.
fn sweep(seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ns = Vec::new();
    let mut wakeup = Vec::new();
    let mut broadcast = Vec::new();
    for k in 4..=9u32 {
        let n = 1usize << k;
        let (g, _) = gadgets::random_subdivided_complete(n, n, &mut rng);
        ns.push(g.num_nodes() as f64);
        wakeup.push(advice_size(&SpanningTreeOracle::default().advise(&g, 0)) as f64);
        broadcast.push(advice_size(&LightTreeOracle.advise(&g, 0)) as f64);
    }
    (ns, wakeup, broadcast)
}

#[test]
fn oracle_sizes_separate_asymptotically() {
    let (ns, wakeup, broadcast) = sweep(2006);

    // Wakeup advice: best explained by n log n, and the per-n ratio to the
    // broadcast advice grows.
    let w = &best_model(&ns, &wakeup)[0];
    assert_eq!(w.model, Model::NLogN, "{w:?}");

    let b = &best_model(&ns, &broadcast)[0];
    assert_eq!(b.model, Model::Linear, "{b:?}");

    let first_ratio = wakeup[0] / broadcast[0];
    let last_ratio = wakeup[wakeup.len() - 1] / broadcast[broadcast.len() - 1];
    assert!(
        last_ratio > 1.5 * first_ratio,
        "ratio not growing: {first_ratio} → {last_ratio}"
    );
}

#[test]
fn broadcast_bits_per_node_bounded_wakeup_bits_per_node_growing() {
    let (ns, wakeup, broadcast) = sweep(7);
    for ((n, w), b) in ns.iter().zip(&wakeup).zip(&broadcast) {
        assert!(b / n <= 8.0, "broadcast {b} bits on {n} nodes");
        // Wakeup per-node cost grows with log n; already above 8 early.
        if *n >= 128.0 {
            assert!(w / n > 4.0, "wakeup {w} bits on {n} nodes");
        }
    }
    // Wakeup per-node series is increasing in n.
    let per_node: Vec<f64> = ns.iter().zip(&wakeup).map(|(n, w)| w / n).collect();
    assert!(per_node.windows(2).all(|p| p[1] > p[0] * 0.95));
    assert!(per_node.last().unwrap() > &(per_node[0] * 1.3));
}

#[test]
fn both_schemes_complete_with_linear_messages_on_the_same_graphs() {
    let mut rng = StdRng::seed_from_u64(11);
    let (g, _) = gadgets::random_subdivided_complete(64, 64, &mut rng);
    let nodes = g.num_nodes();

    let w = execute(
        &g,
        0,
        &SpanningTreeOracle::default(),
        &TreeWakeup,
        &SimConfig::wakeup(),
    )
    .unwrap();
    let b = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default()).unwrap();
    assert!(w.outcome.all_informed() && b.outcome.all_informed());
    assert_eq!(w.outcome.metrics.messages as usize, nodes - 1);
    assert!(b.outcome.metrics.messages as usize <= 3 * (nodes - 1));
    // The knowledge gap on the same instance.
    assert!(w.oracle_bits > 2 * b.oracle_bits);
}

#[test]
fn flooding_message_complexity_is_quadratic_on_complete_graphs() {
    // The control measurement: without advice the natural broadcast costs
    // Θ(m) = Θ(n²) here, which is what makes the O(n)-advice result
    // meaningful.
    let mut ns = Vec::new();
    let mut msgs = Vec::new();
    for k in 3..=8u32 {
        let n = 1usize << k;
        let g = families::complete_rotational(n);
        let run = execute(&g, 0, &EmptyOracle, &FloodOnce, &SimConfig::default()).unwrap();
        assert!(run.outcome.all_informed());
        ns.push(n as f64);
        msgs.push(run.outcome.metrics.messages as f64);
    }
    let quad = fit_model(Model::Quadratic, &ns, &msgs);
    assert!(quad.r_squared > 0.9999, "{quad:?}");
    let lin = fit_model(Model::Linear, &ns, &msgs);
    assert!(quad.r_squared > lin.r_squared);
}
