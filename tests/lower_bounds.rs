//! Integration: the lower-bound side (Theorem 2.2, Theorem 3.2, Lemma 2.1)
//! — adversary games, counting tables, and the trade-off experiments that
//! exhibit the predicted blow-ups.

use std::collections::BTreeSet;

use oraclesize::graph::gadgets;
use oraclesize::lowerbound::adversary::{
    all_ordered_instances, lemma_2_1_bound, play, ExplicitAdversary,
};
use oraclesize::lowerbound::counting::{broadcast_bound, wakeup_bound, wakeup_threshold};
use oraclesize::lowerbound::discovery::{all_edges, RandomStrategy, SequentialStrategy};
use oraclesize::lowerbound::truncation::tradeoff_curve;
use oraclesize::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lemma_2_1_bound_holds_for_all_strategies_and_pools() {
    for n in [5usize, 6] {
        let pool = all_edges(n);
        for x_size in [1usize, 2] {
            let family = all_ordered_instances(&pool, x_size);
            let bound = lemma_2_1_bound(family.len() as f64, x_size);
            let seq = play(
                n,
                &BTreeSet::new(),
                ExplicitAdversary::new(family.clone()),
                &mut SequentialStrategy,
            );
            assert!(seq.probes as f64 >= bound, "seq n={n} x={x_size}");
            for seed in 0..3 {
                let rnd = play(
                    n,
                    &BTreeSet::new(),
                    ExplicitAdversary::new(family.clone()),
                    &mut RandomStrategy::new(seed),
                );
                assert!(rnd.probes as f64 >= bound, "rnd n={n} x={x_size} s={seed}");
            }
        }
    }
}

#[test]
fn wakeup_on_subdivided_graphs_requires_reaching_every_hidden_node() {
    // Performing wakeup on G_{n,S} requires a message into each hidden
    // node — the reduction at the heart of Theorem 2.2. Verify the engine
    // agrees: a wakeup that completes has informed every hidden node.
    let mut rng = StdRng::seed_from_u64(21);
    let n = 24;
    let (g, s) = gadgets::random_subdivided_complete(n, n, &mut rng);
    let run = execute(
        &g,
        0,
        &SpanningTreeOracle::default(),
        &TreeWakeup,
        &SimConfig::wakeup(),
    )
    .unwrap();
    assert!(run.outcome.all_informed());
    assert_eq!(s.len(), n);
    for i in 0..n {
        assert!(run.outcome.informed[n + i], "hidden node {i} missed");
    }
}

#[test]
fn starved_oracle_forces_superlinear_messages_on_gns() {
    // The constructive face of Theorem 2.2: cutting the wakeup oracle to
    // half its bits already forces a message blow-up on G_{n,S}, and to
    // zero bits forces Θ(n²).
    let mut rng = StdRng::seed_from_u64(24);
    let n = 48;
    let (g, _) = gadgets::random_subdivided_complete(n, n, &mut rng);
    let nodes = g.num_nodes() as u64;
    let full_bits = advice_size(&SpanningTreeOracle::default().advise(&g, 0));

    let points = tradeoff_curve(&g, 0, &[0, full_bits / 2, full_bits], 0).unwrap();
    let (zero, half, full) = (&points[0], &points[1], &points[2]);
    assert_eq!(full.metrics.messages, nodes - 1);
    assert!(
        half.metrics.messages > 2 * (nodes - 1),
        "half budget: {} messages",
        half.metrics.messages
    );
    // Zero budget: only tree leaves (whose advice is genuinely empty, a
    // 0-bit string) avoid flooding; everything else floods → Θ(n²).
    assert!(
        zero.metrics.messages > (nodes * nodes) / 10,
        "zero budget: {} messages",
        zero.metrics.messages
    );
}

#[test]
fn counting_tables_match_paper_asymptotics() {
    // Theorem 2.2's pigeonhole: positive, n log n-shaped for α < 1/2.
    let b15 = wakeup_bound(1 << 15, 0.25);
    let b17 = wakeup_bound(1 << 17, 0.25);
    assert!(b15.message_bound > 0.0);
    assert!(b17.message_bound / b15.message_bound > 4.0); // superlinear growth

    // Threshold remark.
    assert_eq!(wakeup_threshold(1), 0.5);

    // Theorem 3.2: at k = √(log n) the bound crosses the Claim 3.3 target.
    let b = broadcast_bound(1 << 16, 4);
    assert!(b.message_bound >= b.claim_target);
}

#[test]
fn broadcast_with_tiny_oracle_on_cliques_floods_the_cliques() {
    // G_{n,S,C}: with no advice, discovering which clique edge is missing
    // costs Θ(k²) messages per clique under flooding; with the 8n-bit
    // oracle Scheme B pays ~3 per node. The gap grows with k.
    let mut rng = StdRng::seed_from_u64(23);
    let mut previous_gap = 0.0;
    for k in [4usize, 8] {
        let n = 8 * k;
        let (g, _, _) = gadgets::random_clique_gadget(n, k, &mut rng);
        let flood = execute(&g, 0, &EmptyOracle, &FloodOnce, &SimConfig::default()).unwrap();
        let oracle = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default()).unwrap();
        assert!(flood.outcome.all_informed());
        assert!(oracle.outcome.all_informed());
        let gap = flood.outcome.metrics.messages as f64 / oracle.outcome.metrics.messages as f64;
        assert!(gap > previous_gap, "gap should grow with k: {gap}");
        previous_gap = gap;
    }
}
