//! Quickstart: the paper's headline upper bounds on one network.
//!
//! Builds a 64-node network, then runs
//!
//! 1. broadcast with the `O(n)`-bit oracle of Theorem 3.1 (Scheme B),
//! 2. wakeup with the `O(n log n)`-bit oracle of Theorem 2.1,
//! 3. oracle-free flooding for comparison,
//!
//! and prints the knowledge/message costs side by side.
//!
//! Run with: `cargo run --example quickstart`

use oraclesize::prelude::*;

fn main() -> Result<(), oraclesize::sim::SimError> {
    let n = 64;
    let g = families::complete_rotational(n);
    let source = 0;

    println!("network: complete graph K_{n} (rotational ports), source {source}\n");

    // 1. Broadcast with the light-tree oracle (Theorem 3.1).
    let broadcast = execute(
        &g,
        source,
        &LightTreeOracle,
        &SchemeB,
        &SimConfig::default(),
    )?;
    assert!(broadcast.outcome.all_informed());
    println!(
        "broadcast (Scheme B):  oracle {:>6} bits (≤ 8n = {}), messages {:>5} (≤ 3(n−1) = {})",
        broadcast.oracle_bits,
        8 * n,
        broadcast.outcome.metrics.messages,
        3 * (n - 1),
    );

    // 2. Wakeup with the spanning-tree oracle (Theorem 2.1).
    let wakeup = execute(
        &g,
        source,
        &SpanningTreeOracle::default(),
        &TreeWakeup,
        &SimConfig::wakeup(),
    )?;
    assert!(wakeup.outcome.all_informed());
    println!(
        "wakeup (tree oracle):  oracle {:>6} bits (Θ(n log n)),   messages {:>5} (= n−1)",
        wakeup.oracle_bits, wakeup.outcome.metrics.messages,
    );

    // 3. No knowledge at all: flooding.
    let flood = execute(&g, source, &EmptyOracle, &FloodOnce, &SimConfig::default())?;
    assert!(flood.outcome.all_informed());
    println!(
        "flooding (no oracle):  oracle {:>6} bits,               messages {:>5} (Θ(n²) here)",
        flood.oracle_bits, flood.outcome.metrics.messages,
    );

    println!(
        "\nthe separation: the broadcast oracle is {:.1}x smaller than the wakeup oracle,\n\
         and both beat flooding's {}x message blow-up.",
        wakeup.oracle_bits as f64 / broadcast.oracle_bits.max(1) as f64,
        flood.outcome.metrics.messages / wakeup.outcome.metrics.messages.max(1),
    );
    Ok(())
}
