//! Exploration by a mobile agent — the paper's conclusion, made concrete.
//!
//! The conclusion conjectures that oracle size measures the difficulty of
//! "exploration by mobile agents" too. This example walks three agents over
//! the same networks:
//!
//! * the **guided tour** (advice: Euler-tour departure sequences,
//!   `O(n log Δ)` bits) — exactly `2(n−1)` moves,
//! * advice-free **DFS with backtracking** — up to `2m` moves,
//! * a **random walk** — the zero-knowledge baseline.
//!
//! Run with: `cargo run --release --example exploration`

use oraclesize::bits::BitString;
use oraclesize::explore::agent::{walk, WalkConfig};
use oraclesize::explore::oracle::{tour_advice, tour_advice_bits};
use oraclesize::explore::strategies::{DfsBacktrack, GuidedTour, RandomWalk};
use oraclesize::graph::families;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let networks = [
        ("grid 8x8", families::grid(8, 8)),
        ("hypercube d=6", families::hypercube(6)),
        ("complete K_64", families::complete_rotational(64)),
        (
            "random sparse",
            families::random_connected(64, 0.15, &mut rng),
        ),
    ];

    println!(
        "{:<16} {:>5} {:>6} | {:>11} {:>10} | {:>10} | {:>12}",
        "network", "n", "m", "advice bits", "tour moves", "dfs moves", "random cover"
    );
    for (name, g) in networks {
        let n = g.num_nodes();
        let empty = vec![BitString::new(); n];

        let tour = walk(
            &g,
            0,
            &tour_advice(&g, 0),
            &mut GuidedTour::new(),
            &WalkConfig::default(),
        );
        assert!(tour.covered_all && tour.halted);
        assert_eq!(tour.moves, 2 * (n as u64 - 1));

        let dfs = walk(
            &g,
            0,
            &empty,
            &mut DfsBacktrack::new(),
            &WalkConfig::default(),
        );
        assert!(dfs.covered_all && dfs.halted);
        assert!(dfs.moves <= 2 * g.num_edges() as u64);

        let random = walk(
            &g,
            0,
            &empty,
            &mut RandomWalk::new(7),
            &WalkConfig {
                max_moves: 2_000_000,
            },
        );

        println!(
            "{:<16} {:>5} {:>6} | {:>11} {:>10} | {:>10} | {:>12}",
            name,
            n,
            g.num_edges(),
            tour_advice_bits(&g, 0),
            tour.moves,
            dfs.moves,
            random
                .cover_moves
                .map_or("> 2e6".to_string(), |c| c.to_string()),
        );
    }
    println!("\nknowledge buys moves, exactly as it buys messages in the dissemination tasks.");
}
