//! The knowledge → message-complexity trade-off curve (experiment F3).
//!
//! Theorem 2.2 says sub-`Θ(n log n)` advice cannot keep wakeup linear on
//! the subdivided graphs `G_{n,S}`. This example shows the constructive
//! face of that statement: wakeup with a spanning-tree oracle cut to a
//! shrinking bit budget (nodes whose advice is withheld fall back to
//! flooding) and the message count climbing from `n − 1` toward `Θ(n²)`.
//!
//! Run with: `cargo run --release --example advice_budget`

use oraclesize::graph::gadgets;
use oraclesize::lowerbound::truncation::tradeoff_curve;
use oraclesize::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), oraclesize::sim::SimError> {
    let mut rng = StdRng::seed_from_u64(42);
    let n = 64;
    let (g, _) = gadgets::random_subdivided_complete(n, n, &mut rng);
    let nodes = g.num_nodes();

    let full = {
        let advice = SpanningTreeOracle::default().advise(&g, 0);
        advice_size(&advice)
    };
    println!(
        "G_{{{n},S}}: {nodes} nodes, {} edges; full wakeup oracle = {full} bits\n",
        g.num_edges()
    );
    println!(
        "{:>10} {:>12} {:>10} {:>12}",
        "budget", "bits given", "messages", "vs n−1"
    );

    let budgets: Vec<u64> = (0..=10).map(|i| full * i / 10).collect();
    let points = tradeoff_curve(&g, 0, &budgets, 0)?;
    for p in &points {
        println!(
            "{:>9}% {:>12} {:>10} {:>11.1}x",
            100 * p.budget_bits / full.max(1),
            p.oracle_bits,
            p.metrics.messages,
            p.metrics.messages as f64 / (nodes as f64 - 1.0),
        );
    }

    let worst = points.first().expect("nonempty");
    let best = points.last().expect("nonempty");
    println!(
        "\nzero advice costs {}x the messages of full advice — knowledge buys messages.",
        worst.metrics.messages / best.metrics.messages.max(1)
    );
    Ok(())
}
