//! Watch the Lemma 2.1 adversary defeat probing strategies.
//!
//! The adversary maintains every still-consistent instance of the
//! edge-discovery problem and answers each probe with the majority side,
//! guaranteeing at least `log2(|I| / |X|!)` probes. This example plays it
//! against three strategies on `K*_6` and prints the per-probe trace of
//! the first game.
//!
//! Run with: `cargo run --example adversary_game`

use std::collections::BTreeSet;

use oraclesize::lowerbound::adversary::{all_ordered_instances, play, ExplicitAdversary};
use oraclesize::lowerbound::discovery::{
    all_edges, AdaptiveNeighborStrategy, DiscoveryStrategy, RandomStrategy, SequentialStrategy,
};

fn main() {
    let n = 6;
    let x_size = 2;
    let pool = all_edges(n);
    let family = all_ordered_instances(&pool, x_size);
    println!(
        "edge discovery on K*_{n}: |X| = {x_size}, instance family |I| = {}",
        family.len()
    );
    println!(
        "Lemma 2.1 bound: every strategy needs ≥ log2(|I|/|X|!) = {:.2} probes\n",
        (family.len() as f64).log2() - (2f64).log2()
    );

    // Detailed trace of one game.
    {
        let mut adversary = ExplicitAdversary::new(family.clone());
        let mut strategy = SequentialStrategy;
        let mut regular: BTreeSet<(usize, usize)> = BTreeSet::new();
        println!("trace (sequential strategy):");
        while !adversary.is_settled() {
            let revealed = adversary.revealed().to_vec();
            let view = oraclesize::lowerbound::GameView {
                n,
                x_size,
                y: &BTreeSet::new(),
                revealed: &revealed,
                regular: &regular,
            };
            let probe = strategy.next_probe(&view);
            let before = adversary.active_count();
            let result = adversary.respond(probe);
            println!(
                "  probe {:?}: {:?} — active instances {} → {}",
                probe,
                result,
                before,
                adversary.active_count()
            );
            if result == oraclesize::lowerbound::ProbeResult::Regular {
                regular.insert(probe);
            }
        }
        println!("  settled after {} probes\n", adversary.probes());
    }

    // Tournament.
    let strategies: Vec<Box<dyn DiscoveryStrategy>> = vec![
        Box::new(SequentialStrategy),
        Box::new(RandomStrategy::new(7)),
        Box::new(AdaptiveNeighborStrategy),
    ];
    println!("{:<20} {:>8} {:>10}", "strategy", "probes", "bound");
    for mut s in strategies {
        let adversary = ExplicitAdversary::new(family.clone());
        let result = play(n, &BTreeSet::new(), adversary, s.as_mut());
        println!(
            "{:<20} {:>8} {:>10.2}",
            s.name(),
            result.probes,
            result.bound
        );
        assert!(result.probes as f64 >= result.bound);
    }
    println!("\nevery strategy pays at least the information-theoretic price.");
}
