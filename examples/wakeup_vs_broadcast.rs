//! The paper's central separation, measured end to end.
//!
//! Sweeps `n` over the subdivided complete graphs `G_{n,S}` (the Theorem
//! 2.2 construction) and prints, per size:
//!
//! * the wakeup oracle size (Θ(n log n)) and its `n − 1` messages,
//! * the broadcast oracle size (≤ 8n) and Scheme B's linear messages,
//! * the growth-model fit of both size series — `O(n log n)` vs `O(n)`.
//!
//! Run with: `cargo run --release --example wakeup_vs_broadcast`

use oraclesize::analysis::fit::best_model;
use oraclesize::graph::gadgets;
use oraclesize::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), oraclesize::sim::SimError> {
    let mut rng = StdRng::seed_from_u64(2006);
    let sizes = [16usize, 32, 64, 128, 256];

    println!(
        "{:>6} {:>6} | {:>14} {:>10} | {:>14} {:>10}",
        "n", "nodes", "wakeup bits", "messages", "broadcast bits", "messages"
    );

    let mut ns = Vec::new();
    let mut wakeup_bits = Vec::new();
    let mut broadcast_bits = Vec::new();

    for n in sizes {
        // G_{n,S}: hide n degree-2 nodes inside edges of K*_n → 2n nodes.
        let (g, _s) = gadgets::random_subdivided_complete(n, n, &mut rng);
        let nodes = g.num_nodes();

        let w = execute(
            &g,
            0,
            &SpanningTreeOracle::default(),
            &TreeWakeup,
            &SimConfig::wakeup(),
        )?;
        assert!(w.outcome.all_informed());

        let b = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default())?;
        assert!(b.outcome.all_informed());

        println!(
            "{:>6} {:>6} | {:>14} {:>10} | {:>14} {:>10}",
            n,
            nodes,
            w.oracle_bits,
            w.outcome.metrics.messages,
            b.oracle_bits,
            b.outcome.metrics.messages
        );

        ns.push(nodes as f64);
        wakeup_bits.push(w.oracle_bits as f64);
        broadcast_bits.push(b.oracle_bits as f64);
    }

    let w_fit = &best_model(&ns, &wakeup_bits)[0];
    let b_fit = &best_model(&ns, &broadcast_bits)[0];
    println!(
        "\nwakeup oracle size grows like    {} (R² = {:.6})",
        w_fit.model, w_fit.r_squared
    );
    println!(
        "broadcast oracle size grows like {} (R² = {:.6})",
        b_fit.model, b_fit.r_squared
    );
    println!("\n⇒ an efficient wakeup needs strictly more knowledge than an efficient broadcast.");
    Ok(())
}
