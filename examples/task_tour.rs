//! A tour of every task in the library on one network: the oracle-size
//! measure applied across the paper's §1.1/§1.2 task list.
//!
//! For each task, the knowledge cost (oracle bits) and the communication
//! cost (messages) of the advice-assisted solution, next to its advice-free
//! comparator.
//!
//! Run with: `cargo run --release --example task_tour`

use oraclesize::core::construction::{
    collect_parent_ports, verify_bfs_tree, BfsTreeOracle, DistributedBfs, ZeroMessageTree,
};
use oraclesize::core::election::{verify_election, AnnouncedLeader, ElectionOracle, FloodMax};
use oraclesize::core::gossip::{decode_gossip_output, GossipOracle, TreeGossip};
use oraclesize::prelude::*;

fn main() -> Result<(), oraclesize::sim::SimError> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2006);
    let g = families::random_connected(96, 0.12, &mut rng);
    let n = g.num_nodes();
    println!(
        "network: random connected, n = {n}, m = {}\n",
        g.num_edges()
    );
    println!(
        "{:<14} | {:>12} {:>9} | {:>16} {:>9}",
        "task", "oracle bits", "messages", "comparator", "messages"
    );

    // Broadcast.
    let b = execute(&g, 0, &LightTreeOracle, &SchemeB, &SimConfig::default())?;
    let bf = execute(&g, 0, &EmptyOracle, &FloodOnce, &SimConfig::default())?;
    assert!(b.outcome.all_informed() && bf.outcome.all_informed());
    println!(
        "{:<14} | {:>12} {:>9} | {:>16} {:>9}",
        "broadcast",
        b.oracle_bits,
        b.outcome.metrics.messages,
        "flooding",
        bf.outcome.metrics.messages
    );

    // Wakeup.
    let w = execute(
        &g,
        0,
        &SpanningTreeOracle::default(),
        &TreeWakeup,
        &SimConfig::wakeup(),
    )?;
    let wf = execute(&g, 0, &EmptyOracle, &FloodOnce, &SimConfig::wakeup())?;
    println!(
        "{:<14} | {:>12} {:>9} | {:>16} {:>9}",
        "wakeup",
        w.oracle_bits,
        w.outcome.metrics.messages,
        "flooding",
        wf.outcome.metrics.messages
    );

    // Gossip.
    let go = execute(
        &g,
        0,
        &GossipOracle::default(),
        &TreeGossip,
        &SimConfig::default(),
    )?;
    let complete = go.outcome.outputs.iter().all(|o| {
        o.as_ref()
            .and_then(decode_gossip_output)
            .is_some_and(|s| s.len() == n)
    });
    assert!(complete);
    println!(
        "{:<14} | {:>12} {:>9} | {:>16} {:>9}",
        "gossip", go.oracle_bits, go.outcome.metrics.messages, "(no comparator)", "-"
    );

    // Leader election.
    let e = execute(
        &g,
        0,
        &ElectionOracle,
        &AnnouncedLeader,
        &SimConfig::default(),
    )?;
    verify_election(&g, &e.outcome.outputs, false).expect("agreement");
    let ef = execute(&g, 0, &EmptyOracle, &FloodMax, &SimConfig::default())?;
    verify_election(&g, &ef.outcome.outputs, true).expect("max elected");
    println!(
        "{:<14} | {:>12} {:>9} | {:>16} {:>9}",
        "election",
        e.oracle_bits,
        e.outcome.metrics.messages,
        "flood-max",
        ef.outcome.metrics.messages
    );

    // BFS-tree construction.
    let c = execute(
        &g,
        0,
        &BfsTreeOracle,
        &ZeroMessageTree,
        &SimConfig::default(),
    )?;
    let ports = collect_parent_ports(&c.outcome.outputs).expect("outputs decode");
    verify_bfs_tree(&g, 0, &ports).expect("valid BFS tree");
    let cf = execute(&g, 0, &EmptyOracle, &DistributedBfs, &SimConfig::default())?;
    println!(
        "{:<14} | {:>12} {:>9} | {:>16} {:>9}",
        "bfs-tree",
        c.oracle_bits,
        c.outcome.metrics.messages,
        "distributed-bfs",
        cf.outcome.metrics.messages
    );

    println!(
        "\nacross every task, the oracle converts Θ(m)-and-worse communication into \
         linear (or zero) messages;\nthe *size* of the advice needed is the paper's \
         measure of how hard the task is."
    );
    Ok(())
}
